#include "hw/kernel_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace mib::hw {
namespace {

class KernelModelTest : public ::testing::Test {
 protected:
  KernelModel km_{h100_sxm5()};
};

TEST_F(KernelModelTest, GemmEfficiencySaturatesWithM) {
  const double e1 = km_.gemm_efficiency(1);
  const double e64 = km_.gemm_efficiency(64);
  const double e4096 = km_.gemm_efficiency(4096);
  EXPECT_LT(e1, e64);
  EXPECT_LT(e64, e4096);
  EXPECT_LE(e4096, km_.device().max_compute_efficiency);
  EXPECT_GT(e4096, 0.9 * km_.device().max_compute_efficiency);
}

TEST_F(KernelModelTest, SmallMGemmIsMemoryBound) {
  // Decode-style GEMM: 1 token x large weight matrix.
  const auto c = km_.gemm(1, 4096, 4096, DType::kFP16, DType::kFP16);
  EXPECT_GT(c.memory_s, c.compute_s);
}

TEST_F(KernelModelTest, LargeMGemmIsComputeBound) {
  const auto c = km_.gemm(16384, 4096, 4096, DType::kFP16, DType::kFP16);
  EXPECT_GT(c.compute_s, c.memory_s);
}

TEST_F(KernelModelTest, GemmFlopsAndBytesAccounting) {
  const auto c = km_.gemm(8, 16, 32, DType::kFP16, DType::kFP16);
  EXPECT_DOUBLE_EQ(c.flops, 2.0 * 8 * 16 * 32);
  EXPECT_DOUBLE_EQ(c.bytes, (16.0 * 32 + 8.0 * 32 + 8.0 * 16) * 2.0);
}

TEST_F(KernelModelTest, FP8HalvesWeightTrafficAndDoublesPeak) {
  const auto f16 = km_.gemm(64, 8192, 8192, DType::kFP16, DType::kFP16);
  const auto f8 = km_.gemm(64, 8192, 8192, DType::kFP8E4M3, DType::kFP8E4M3);
  EXPECT_LT(f8.bytes, 0.55 * f16.bytes);
  EXPECT_NEAR(f8.compute_s, f16.compute_s / 2.0, f16.compute_s * 0.01);
  EXPECT_LT(f8.total(), f16.total());
}

TEST_F(KernelModelTest, WeightOnlyInt4CutsBytesNotPeak) {
  const auto f16 = km_.gemm(64, 8192, 8192, DType::kFP16, DType::kFP16);
  const auto w4 = km_.gemm(64, 8192, 8192, DType::kFP16, DType::kINT4);
  EXPECT_LT(w4.bytes, f16.bytes);
  EXPECT_NEAR(w4.compute_s, f16.compute_s, f16.compute_s * 1e-9);
}

TEST_F(KernelModelTest, RooflineTotalIsMaxPlusLaunch) {
  const auto c = km_.op(1e12, 1e9, 0.5, 2);
  EXPECT_DOUBLE_EQ(c.total(),
                   std::max(c.compute_s, c.memory_s) + c.launch_s);
  EXPECT_DOUBLE_EQ(c.launch_s,
                   2 * km_.device().kernel_launch_overhead);
}

TEST_F(KernelModelTest, CostAccumulation) {
  const auto a = km_.op(1e12, 1e9, 0.5);
  const auto b = km_.op(2e12, 3e9, 0.5);
  const auto s = a + b;
  EXPECT_DOUBLE_EQ(s.flops, a.flops + b.flops);
  EXPECT_DOUBLE_EQ(s.compute_s, a.compute_s + b.compute_s);
}

TEST_F(KernelModelTest, L2ResidentOpsGetBandwidthBonus) {
  const double small = 1.0 * kMB;    // fits in 50 MB L2
  const double large = 1.0 * kGB;
  EXPECT_GT(km_.achievable_bw(small), km_.achievable_bw(large));
}

TEST_F(KernelModelTest, GroupedGemmFusedBeatsUnfused) {
  const std::vector<double> groups(8, 16.0);
  const auto fused =
      km_.grouped_gemm(groups, 4096, 4096, DType::kFP16, DType::kFP16, true);
  const auto unfused =
      km_.grouped_gemm(groups, 4096, 4096, DType::kFP16, DType::kFP16, false);
  EXPECT_LT(fused.total(), unfused.total());
  EXPECT_LT(fused.launch_s, unfused.launch_s);
  EXPECT_LT(fused.bytes, unfused.bytes);  // no activation round-trip
}

TEST_F(KernelModelTest, GroupedGemmSkipsEmptyGroups) {
  const std::vector<double> some = {16.0, 0.0, 0.0, 16.0};
  const std::vector<double> all = {16.0, 16.0};
  const auto a =
      km_.grouped_gemm(some, 1024, 1024, DType::kFP16, DType::kFP16, false);
  const auto b =
      km_.grouped_gemm(all, 1024, 1024, DType::kFP16, DType::kFP16, false);
  EXPECT_DOUBLE_EQ(a.flops, b.flops);
  EXPECT_DOUBLE_EQ(a.launch_s, b.launch_s);
}

TEST_F(KernelModelTest, GroupedGemmAllEmptyIsFree) {
  const std::vector<double> none = {0.0, 0.0};
  const auto c =
      km_.grouped_gemm(none, 1024, 1024, DType::kFP16, DType::kFP16, true);
  EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST_F(KernelModelTest, GroupedGemmWeightTrafficScalesWithActiveGroups) {
  const std::vector<double> two = {8.0, 8.0};
  const std::vector<double> four = {8.0, 8.0, 8.0, 8.0};
  const auto c2 =
      km_.grouped_gemm(two, 4096, 4096, DType::kFP16, DType::kFP16, true);
  const auto c4 =
      km_.grouped_gemm(four, 4096, 4096, DType::kFP16, DType::kFP16, true);
  EXPECT_GT(c4.bytes, 1.8 * c2.bytes);
}

TEST_F(KernelModelTest, AttentionPrefillQuadraticInSeq) {
  const auto s1 =
      km_.attention_prefill(1, 1024, 32, 128, DType::kFP16);
  const auto s2 =
      km_.attention_prefill(1, 2048, 32, 128, DType::kFP16);
  EXPECT_NEAR(s2.flops / s1.flops, 4.0, 0.01);
}

TEST_F(KernelModelTest, AttentionDecodeReadsKv) {
  const double kv_bytes = 1.0 * kGB;
  const auto c = km_.attention_decode(4, 2048, 32, 128, kv_bytes,
                                      DType::kFP16);
  EXPECT_GE(c.bytes, kv_bytes);
  EXPECT_GT(c.memory_s, c.compute_s);  // decode attention is BW-bound
}

TEST_F(KernelModelTest, ElementwiseIsBandwidthBound) {
  const auto c = km_.elementwise(1e8, 2.0, 1.0, DType::kFP16);
  EXPECT_DOUBLE_EQ(c.bytes, 1e8 * 3.0 * 2.0);
  EXPECT_GT(c.memory_s, c.compute_s);
}

TEST_F(KernelModelTest, MemcpyCountsBothDirections) {
  const auto c = km_.memcpy_op(1e9);
  EXPECT_DOUBLE_EQ(c.bytes, 2e9);
}

TEST_F(KernelModelTest, InvalidInputsThrow) {
  EXPECT_THROW(km_.gemm(0, 1, 1, DType::kFP16, DType::kFP16), Error);
  EXPECT_THROW(km_.op(-1, 0, 0.5), Error);
  EXPECT_THROW(km_.op(1, 1, 0.0), Error);
  EXPECT_THROW(km_.op(1, 1, 1.5), Error);
  EXPECT_THROW(km_.grouped_gemm({}, 1, 1, DType::kFP16, DType::kFP16, true),
               Error);
  EXPECT_THROW(km_.grouped_gemm({-1.0}, 1, 1, DType::kFP16, DType::kFP16,
                                true),
               Error);
}

// Parameterized sweep: fused never loses to unfused across group shapes.
class FusedVsUnfused : public ::testing::TestWithParam<int> {};

TEST_P(FusedVsUnfused, FusedNeverSlower) {
  KernelModel km(h100_sxm5());
  const int groups = GetParam();
  std::vector<double> m(groups);
  for (int g = 0; g < groups; ++g) m[g] = 1.0 + g % 7;
  const auto fused =
      km.grouped_gemm(m, 2048, 2048, DType::kFP16, DType::kFP16, true);
  const auto unfused =
      km.grouped_gemm(m, 2048, 2048, DType::kFP16, DType::kFP16, false);
  EXPECT_LE(fused.total(), unfused.total());
}

INSTANTIATE_TEST_SUITE_P(GroupCounts, FusedVsUnfused,
                         ::testing::Values(1, 2, 4, 8, 16, 32, 64, 128));

}  // namespace
}  // namespace mib::hw
