#include "hw/device.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace mib::hw {
namespace {

TEST(Device, H100Datasheet) {
  const DeviceSpec d = h100_sxm5();
  EXPECT_NEAR(d.peak_flops_16 / kTFLOPS, 989.4, 0.1);
  EXPECT_NEAR(d.peak_flops_8 / kTFLOPS, 1978.9, 0.1);
  EXPECT_NEAR(d.mem_bytes / kGiB, 80.0, 1e-9);
  EXPECT_NEAR(d.mem_bw / kTB, 3.35, 1e-9);
  EXPECT_EQ(d.sm_count, 132);
}

TEST(Device, FP8DoublesPeakOnH100) {
  const DeviceSpec d = h100_sxm5();
  EXPECT_NEAR(d.peak_flops(DType::kFP8E4M3) / d.peak_flops(DType::kFP16),
              2.0, 0.01);
}

TEST(Device, Int4FallsBackTo16BitMath) {
  const DeviceSpec d = h100_sxm5();
  EXPECT_DOUBLE_EQ(d.peak_flops(DType::kINT4), d.peak_flops_16);
}

TEST(Device, FP32UsesVectorPeak) {
  const DeviceSpec d = h100_sxm5();
  EXPECT_LT(d.peak_flops(DType::kFP32), d.peak_flops_16);
}

TEST(Device, UsableMemoryFraction) {
  const DeviceSpec d = h100_sxm5();
  EXPECT_NEAR(d.usable_mem(), 0.9 * 80.0 * kGiB, 1.0);
}

TEST(Device, CS3HasWaferBandwidth) {
  const DeviceSpec d = cs3();
  EXPECT_GT(d.mem_bw, 1000.0 * h100_sxm5().mem_bw);
  EXPECT_GT(d.peak_flops_16, h100_sxm5().peak_flops_16);
}

TEST(Device, A100SlowerThanH100) {
  EXPECT_LT(a100_sxm4().peak_flops_16, h100_sxm5().peak_flops_16);
  EXPECT_LT(a100_sxm4().mem_bw, h100_sxm5().mem_bw);
}

TEST(Device, H200IsH100WithMoreMemory) {
  const DeviceSpec h200 = h200_sxm();
  EXPECT_DOUBLE_EQ(h200.peak_flops_16, h100_sxm5().peak_flops_16);
  EXPECT_GT(h200.mem_bw, h100_sxm5().mem_bw);
  EXPECT_NEAR(h200.mem_bytes / kGiB, 141.0, 1e-9);
}

TEST(Device, B200LeadsEveryAxis) {
  const DeviceSpec b200 = b200_sxm();
  EXPECT_GT(b200.peak_flops_16, 2.0 * h100_sxm5().peak_flops_16);
  EXPECT_GT(b200.mem_bw, h200_sxm().mem_bw);
  EXPECT_GT(b200.mem_bytes, h200_sxm().mem_bytes);
  EXPECT_NEAR(b200.peak_flops(DType::kFP8E4M3) / b200.peak_flops_16, 2.0,
              0.01);
}

TEST(Device, BoardPowerPresets) {
  EXPECT_DOUBLE_EQ(h100_sxm5().tdp_watts, 700.0);
  EXPECT_DOUBLE_EQ(a100_sxm4().tdp_watts, 400.0);
  EXPECT_DOUBLE_EQ(b200_sxm().tdp_watts, 1000.0);
  EXPECT_GT(cs3().tdp_watts, 10000.0);  // full wafer-scale system
}

TEST(Device, LookupByName) {
  EXPECT_EQ(device_by_name("h100").name, h100_sxm5().name);
  EXPECT_EQ(device_by_name("H100-SXM5-80GB").name, h100_sxm5().name);
  EXPECT_EQ(device_by_name("cs-3").name, cs3().name);
  EXPECT_EQ(device_by_name("h200").name, h200_sxm().name);
  EXPECT_EQ(device_by_name("B200").name, b200_sxm().name);
  EXPECT_EQ(device_by_name("A100").name, a100_sxm4().name);
  EXPECT_THROW(device_by_name("tpu-v5"), ConfigError);
}

}  // namespace
}  // namespace mib::hw
