// Exhaustive codec validation: every representable code must round-trip
// exactly (decode -> encode == identity), and encode must map every float
// to its *nearest* representable value. These sweeps cover the entire fp8
// code spaces and the full 65,536-code fp16 space.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "quant/codecs.h"

namespace mib::quant {
namespace {

TEST(ExhaustiveFp8E4M3, AllCodesRoundTrip) {
  for (int code = 0; code < 256; ++code) {
    const auto bits = static_cast<std::uint8_t>(code);
    const float v = fp8e4m3_decode(bits);
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(fp8e4m3_decode(fp8e4m3_encode(v))));
      continue;
    }
    const std::uint8_t re = fp8e4m3_encode(v);
    // -0 and +0 may collapse; compare decoded values instead of bits.
    EXPECT_EQ(fp8e4m3_decode(re), v) << "code " << code;
  }
}

TEST(ExhaustiveFp8E5M2, AllCodesRoundTrip) {
  for (int code = 0; code < 256; ++code) {
    const auto bits = static_cast<std::uint8_t>(code);
    const float v = fp8e5m2_decode(bits);
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(fp8e5m2_decode(fp8e5m2_encode(v))));
      continue;
    }
    const std::uint8_t re = fp8e5m2_encode(v);
    EXPECT_EQ(fp8e5m2_decode(re), v) << "code " << code;
  }
}

TEST(ExhaustiveFp16, AllCodesRoundTrip) {
  for (std::uint32_t code = 0; code < 65536; ++code) {
    const auto bits = static_cast<std::uint16_t>(code);
    const float v = fp16_decode(bits);
    if (std::isnan(v)) {
      EXPECT_TRUE(std::isnan(fp16_decode(fp16_encode(v))));
      continue;
    }
    const std::uint16_t re = fp16_encode(v);
    EXPECT_EQ(fp16_decode(re), v) << "code " << code;
  }
}

TEST(ExhaustiveFp8E4M3, EncodeIsNearest) {
  // Collect all finite e4m3 values, then check that encode() of arbitrary
  // floats lands on the closest one (saturating at the ends).
  std::vector<float> grid;
  for (int code = 0; code < 256; ++code) {
    const float v = fp8e4m3_decode(static_cast<std::uint8_t>(code));
    if (!std::isnan(v)) grid.push_back(v);
  }
  auto nearest = [&](float x) {
    float best = grid[0];
    for (float g : grid) {
      if (std::abs(g - x) < std::abs(best - x)) best = g;
    }
    return best;
  };
  for (float x : {0.0613f, -0.73f, 1.9f, 3.14159f, -17.2f, 200.0f, 447.0f,
                  500.0f, 1e-3f, -1e-4f, 0.34f}) {
    const float got = fp8e4m3_roundtrip(x);
    const float want = nearest(x);
    // Ties can go either way under RNE; accept both sides of a tie.
    EXPECT_LE(std::abs(got - x), std::abs(want - x) + 1e-12f) << x;
  }
}

TEST(ExhaustiveFp16, MatchesNativeConversionOnSamples) {
  // Cross-check against the compiler's float -> _Float16 conversion where
  // available (GCC/Clang on x86-64 provide _Float16).
#if defined(__FLT16_MAX__)
  for (float x : {0.1f, 1.0f / 3.0f, 2.7182818f, -123.456f, 6.1e-5f,
                  65000.0f, -3.0517578e-5f, 9.999e3f}) {
    const auto native = static_cast<float>(static_cast<_Float16>(x));
    EXPECT_EQ(fp16_roundtrip(x), native) << x;
  }
#else
  GTEST_SKIP() << "no native _Float16 on this toolchain";
#endif
}

TEST(ExhaustiveFp16, OrderPreservedAcrossAllCodes) {
  // Decoding in ascending positive code order yields ascending values.
  float prev = fp16_decode(0x0000);
  for (std::uint32_t code = 1; code < 0x7C00; ++code) {  // positive finites
    const float v = fp16_decode(static_cast<std::uint16_t>(code));
    EXPECT_GT(v, prev) << "code " << code;
    prev = v;
  }
}

TEST(ExhaustiveFp8E4M3, CountRepresentableValues) {
  // e4m3 has 256 codes: 2 NaN (0x7F, 0xFF), +0 and -0, leaving 254
  // distinct-by-bits values; magnitudes are symmetric.
  int nans = 0, finites = 0;
  for (int code = 0; code < 256; ++code) {
    const float v = fp8e4m3_decode(static_cast<std::uint8_t>(code));
    if (std::isnan(v)) {
      ++nans;
    } else {
      EXPECT_TRUE(std::isfinite(v));  // e4m3 has no infinities
      ++finites;
    }
  }
  EXPECT_EQ(nans, 2);
  EXPECT_EQ(finites, 254);
}

TEST(ExhaustiveFp8E5M2, HasInfinitiesAndNans) {
  int infs = 0, nans = 0;
  for (int code = 0; code < 256; ++code) {
    const float v = fp8e5m2_decode(static_cast<std::uint8_t>(code));
    if (std::isinf(v)) ++infs;
    if (std::isnan(v)) ++nans;
  }
  EXPECT_EQ(infs, 2);   // +inf, -inf
  EXPECT_EQ(nans, 6);   // 3 mantissa NaN codes x 2 signs
}

}  // namespace
}  // namespace mib::quant
