#include "quant/codecs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace mib::quant {
namespace {

TEST(FP16, ExactValuesRoundTrip) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f}) {
    EXPECT_EQ(fp16_roundtrip(v), v) << v;
  }
}

TEST(FP16, KnownBitPatterns) {
  EXPECT_EQ(fp16_encode(1.0f), 0x3C00);
  EXPECT_EQ(fp16_encode(-2.0f), 0xC000);
  EXPECT_EQ(fp16_encode(0.0f), 0x0000);
  EXPECT_EQ(fp16_encode(65504.0f), 0x7BFF);
  EXPECT_FLOAT_EQ(fp16_decode(0x3C00), 1.0f);
  EXPECT_FLOAT_EQ(fp16_decode(0x3555), 0.333251953125f);
}

TEST(FP16, SubnormalsPreserved) {
  const float smallest_subnormal = std::ldexp(1.0f, -24);
  EXPECT_EQ(fp16_roundtrip(smallest_subnormal), smallest_subnormal);
  EXPECT_EQ(fp16_encode(smallest_subnormal), 0x0001);
  // Below half the smallest subnormal -> rounds to zero.
  EXPECT_EQ(fp16_roundtrip(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(FP16, OverflowToInfinity) {
  EXPECT_TRUE(std::isinf(fp16_roundtrip(1e6f)));
  EXPECT_TRUE(std::isinf(fp16_roundtrip(-1e6f)));
  EXPECT_LT(fp16_roundtrip(-1e6f), 0.0f);
}

TEST(FP16, RoundToNearestEvenTie) {
  // 2048 + 1 = 2049 is exactly between 2048 and 2050 (step 2 at this
  // binade); RNE picks 2048 (even mantissa).
  EXPECT_EQ(fp16_roundtrip(2049.0f), 2048.0f);
  EXPECT_EQ(fp16_roundtrip(2051.0f), 2052.0f);
}

TEST(FP16, NanPropagates) {
  EXPECT_TRUE(std::isnan(
      fp16_decode(fp16_encode(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(FP16, InfinityEncodes) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_EQ(fp16_encode(inf), 0x7C00);
  EXPECT_TRUE(std::isinf(fp16_decode(0x7C00)));
  EXPECT_TRUE(std::isinf(fp16_decode(0xFC00)));
  EXPECT_LT(fp16_decode(0xFC00), 0.0f);
}

TEST(BF16, TruncatesMantissa) {
  EXPECT_EQ(bf16_roundtrip(1.0f), 1.0f);
  // bf16 has 8 mantissa bits: 1 + 2^-9 is not representable.
  const float x = 1.0f + std::ldexp(1.0f, -9);
  const float r = bf16_roundtrip(x);
  EXPECT_TRUE(r == 1.0f || r == 1.0f + std::ldexp(1.0f, -8));
}

TEST(BF16, LargeDynamicRange) {
  // bf16 shares float32's exponent: 1e38 survives.
  EXPECT_NEAR(bf16_roundtrip(1e38f), 1e38f, 1e36f);
}

TEST(BF16, RoundsToNearestEven) {
  // 1 + 2^-8 representable; 1 + 3*2^-9 is a tie -> rounds to even.
  const float tie = 1.0f + 3.0f * std::ldexp(1.0f, -9);
  const float r = bf16_roundtrip(tie);
  EXPECT_EQ(r, 1.0f + 2.0f * std::ldexp(1.0f, -8));
}

TEST(FP8E4M3, ExactSmallValues) {
  for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 448.0f, -448.0f, 0.0625f}) {
    EXPECT_EQ(fp8e4m3_roundtrip(v), v) << v;
  }
}

TEST(FP8E4M3, SaturatesInsteadOfInf) {
  EXPECT_EQ(fp8e4m3_roundtrip(1000.0f), 448.0f);
  EXPECT_EQ(fp8e4m3_roundtrip(-1000.0f), -448.0f);
  EXPECT_EQ(fp8e4m3_roundtrip(std::numeric_limits<float>::infinity()),
            448.0f);
}

TEST(FP8E4M3, KnownBits) {
  // 448 = 1.75 * 2^8: biased exp 15, mantissa 110 -> 0x7E.
  EXPECT_EQ(fp8e4m3_encode(448.0f), 0x7E);
  EXPECT_FLOAT_EQ(fp8e4m3_decode(0x7E), 448.0f);
  // NaN code 0x7F.
  EXPECT_TRUE(std::isnan(fp8e4m3_decode(0x7F)));
  EXPECT_TRUE(std::isnan(fp8e4m3_decode(0xFF)));
}

TEST(FP8E4M3, Subnormals) {
  // Smallest subnormal: 2^-9.
  const float s = std::ldexp(1.0f, -9);
  EXPECT_EQ(fp8e4m3_roundtrip(s), s);
  EXPECT_EQ(fp8e4m3_encode(s), 0x01);
}

TEST(FP8E4M3, ThreeMantissaBitsResolution) {
  // Between 16 and 18 the step is 2: 17 is a tie -> 16 (even).
  EXPECT_EQ(fp8e4m3_roundtrip(17.0f), 16.0f);
  EXPECT_EQ(fp8e4m3_roundtrip(19.0f), 20.0f);
}

TEST(FP8E5M2, HasInfinity) {
  EXPECT_TRUE(std::isinf(fp8e5m2_roundtrip(1e6f)));
  EXPECT_EQ(fp8e5m2_roundtrip(57344.0f), 57344.0f);
}

TEST(FP8E5M2, CoarserThanE4M3Near1) {
  // e5m2 has 2 mantissa bits: step at [1,2) is 0.25.
  EXPECT_EQ(fp8e5m2_roundtrip(1.25f), 1.25f);
  EXPECT_EQ(fp8e5m2_roundtrip(1.13f), 1.25f);  // nearest
  EXPECT_EQ(fp8e5m2_roundtrip(1.05f), 1.0f);
}

TEST(FP8E5M2, WiderRangeThanE4M3) {
  EXPECT_GT(kFP8E5M2Max, kFP8E4M3Max);
  EXPECT_EQ(fp8e5m2_roundtrip(1024.0f), 1024.0f);
}

TEST(Codecs, SignSymmetry) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const float x = static_cast<float>(rng.normal()) * 10.0f;
    EXPECT_EQ(fp16_roundtrip(-x), -fp16_roundtrip(x));
    EXPECT_EQ(fp8e4m3_roundtrip(-x), -fp8e4m3_roundtrip(x));
    EXPECT_EQ(fp8e5m2_roundtrip(-x), -fp8e5m2_roundtrip(x));
  }
}

TEST(Codecs, RoundTripIsIdempotent) {
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.normal()) * 100.0f;
    const float q16 = fp16_roundtrip(x);
    EXPECT_EQ(fp16_roundtrip(q16), q16);
    const float q8 = fp8e4m3_roundtrip(x);
    EXPECT_EQ(fp8e4m3_roundtrip(q8), q8);
    const float q52 = fp8e5m2_roundtrip(x);
    EXPECT_EQ(fp8e5m2_roundtrip(q52), q52);
    const float qb = bf16_roundtrip(x);
    EXPECT_EQ(bf16_roundtrip(qb), qb);
  }
}

TEST(Codecs, EncodeDecodeMatchesRoundtrip) {
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const float x = static_cast<float>(rng.normal());
    EXPECT_EQ(fp16_decode(fp16_encode(x)), fp16_roundtrip(x));
    EXPECT_EQ(fp8e4m3_decode(fp8e4m3_encode(x)), fp8e4m3_roundtrip(x));
    EXPECT_EQ(fp8e5m2_decode(fp8e5m2_encode(x)), fp8e5m2_roundtrip(x));
  }
}

TEST(Codecs, MonotoneOnSamples) {
  // Quantization must preserve ordering (weak monotonicity).
  Rng rng(11);
  std::vector<float> xs;
  for (int i = 0; i < 300; ++i) {
    xs.push_back(static_cast<float>(rng.normal()) * 50.0f);
  }
  std::sort(xs.begin(), xs.end());
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_LE(fp16_roundtrip(xs[i - 1]), fp16_roundtrip(xs[i]));
    EXPECT_LE(fp8e4m3_roundtrip(xs[i - 1]), fp8e4m3_roundtrip(xs[i]));
  }
}

TEST(Codecs, RelativeErrorBounds) {
  // Max relative error of RNE is half the LSB: 2^-11 (fp16), 2^-4 (e4m3),
  // 2^-3 (e5m2) for normal-range values.
  Rng rng(13);
  for (int i = 0; i < 2000; ++i) {
    const float x = static_cast<float>(rng.uniform(0.1, 100.0));
    EXPECT_LE(std::abs(fp16_roundtrip(x) - x) / x, std::ldexp(1.0, -11) * 1.01);
    EXPECT_LE(std::abs(fp8e4m3_roundtrip(x) - x) / x,
              std::ldexp(1.0, -4) * 1.01);
    EXPECT_LE(std::abs(fp8e5m2_roundtrip(x) - x) / x,
              std::ldexp(1.0, -3) * 1.01);
  }
}

}  // namespace
}  // namespace mib::quant
