#include "quant/quantize.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace mib::quant {
namespace {

Tensor random_weights(std::size_t rows, std::size_t cols,
                      std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::randn({rows, cols}, rng, 0.05f);
}

TEST(FakeQuantize, FP32IsLossless) {
  Tensor t = random_weights(16, 64);
  const auto err = fake_quantize_tensor(t, DType::kFP32,
                                        Granularity::kPerTensor);
  EXPECT_EQ(err.max_abs_err, 0.0);
  EXPECT_TRUE(std::isinf(err.snr_db()));
}

// Relative-error ceilings per dtype for Gaussian weights.
struct DtypeBound {
  DType dt;
  double max_rel_err;
  double min_rel_err;  ///< must be genuinely lossy (not a silent no-op)
};

class QuantErrorBound : public ::testing::TestWithParam<DtypeBound> {};

TEST_P(QuantErrorBound, RelErrWithinBand) {
  const auto p = GetParam();
  Tensor t = random_weights(32, 256, 7);
  const auto err = fake_quantize_tensor(t, p.dt, Granularity::kPerRow);
  EXPECT_LE(err.rel_err, p.max_rel_err) << dtype_name(p.dt);
  EXPECT_GE(err.rel_err, p.min_rel_err) << dtype_name(p.dt);
}

INSTANTIATE_TEST_SUITE_P(
    Bands, QuantErrorBound,
    ::testing::Values(DtypeBound{DType::kFP16, 5e-4, 1e-6},
                      DtypeBound{DType::kBF16, 5e-3, 1e-5},
                      DtypeBound{DType::kFP8E4M3, 0.05, 1e-3},
                      DtypeBound{DType::kFP8E5M2, 0.09, 5e-3},
                      DtypeBound{DType::kINT8, 0.02, 1e-4},
                      DtypeBound{DType::kINT4, 0.25, 1e-3}),
    [](const ::testing::TestParamInfo<DtypeBound>& param_info) {
      return dtype_name(param_info.param.dt);
    });

TEST(FakeQuantize, ErrorOrderingAcrossPrecisions) {
  auto rel = [](DType dt) {
    Tensor t = random_weights(32, 256, 9);
    return fake_quantize_tensor(t, dt, Granularity::kPerRow).rel_err;
  };
  EXPECT_LT(rel(DType::kFP16), rel(DType::kFP8E4M3));
  EXPECT_LT(rel(DType::kFP8E4M3), rel(DType::kINT4));
  EXPECT_LT(rel(DType::kINT8), rel(DType::kINT4));
}

TEST(FakeQuantize, PerRowBeatsPerTensorOnScaledRows) {
  // Rows with wildly different magnitudes: per-tensor scale wastes range.
  Rng rng(11);
  Tensor t({8, 128});
  for (std::size_t r = 0; r < 8; ++r) {
    const float scale = std::pow(10.0f, static_cast<float>(r) - 4.0f);
    for (auto& v : t.row(r)) {
      v = static_cast<float>(rng.normal()) * scale;
    }
  }
  Tensor t2 = t;
  const auto per_tensor =
      fake_quantize_tensor(t, DType::kINT8, Granularity::kPerTensor);
  const auto per_row =
      fake_quantize_tensor(t2, DType::kINT8, Granularity::kPerRow);
  // Global relative error is dominated by the largest row, so the gap is
  // modest — but per-row must win, and the small rows must survive: under
  // a per-tensor scale the 1e-4-magnitude row quantizes to all zeros.
  EXPECT_LT(per_row.rel_err, per_tensor.rel_err);
  for (float v : t.row(0)) EXPECT_EQ(v, 0.0f);       // per-tensor: wiped out
  float row0_energy = 0.0f;
  for (float v : t2.row(0)) row0_energy += v * v;    // per-row: preserved
  EXPECT_GT(row0_energy, 0.0f);
}

TEST(FakeQuantize, Int8ValuesLieOnScaleGrid) {
  Tensor t = random_weights(4, 64, 13);
  Tensor ref = t;
  fake_quantize_tensor(t, DType::kINT8, Granularity::kPerRow);
  for (std::size_t r = 0; r < 4; ++r) {
    float max_abs = 0.0f;
    for (float v : ref.row(r)) max_abs = std::max(max_abs, std::abs(v));
    const float scale = max_abs / 127.0f;
    for (float v : t.row(r)) {
      const float q = v / scale;
      EXPECT_NEAR(q, std::nearbyint(q), 1e-3);
      EXPECT_LE(std::abs(q), 127.5f);
    }
  }
}

TEST(FakeQuantize, AllZeroTensorIsExact) {
  Tensor t = Tensor::zeros({4, 16});
  const auto err = fake_quantize_tensor(t, DType::kINT4,
                                        Granularity::kPerRow);
  EXPECT_EQ(err.max_abs_err, 0.0);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(FakeQuantize, IntOnSpanRejected) {
  std::vector<float> data(8, 1.0f);
  EXPECT_THROW(fake_quantize(std::span<float>(data), DType::kINT8), Error);
}

TEST(FakeQuantize, IntNeedsRank2) {
  Tensor t({8});
  EXPECT_THROW(fake_quantize_tensor(t, DType::kINT8, Granularity::kPerRow),
               Error);
}

TEST(FakeQuantize, QuantizationIsIdempotent) {
  Tensor t = random_weights(8, 64, 17);
  fake_quantize_tensor(t, DType::kFP8E4M3, Granularity::kPerTensor);
  Tensor once = t;
  const auto err2 =
      fake_quantize_tensor(t, DType::kFP8E4M3, Granularity::kPerTensor);
  EXPECT_EQ(err2.max_abs_err, 0.0);
  EXPECT_EQ(max_abs_diff(once, t), 0.0f);
}

TEST(StorageBits, FloatFormatsHaveNoScaleOverhead) {
  EXPECT_DOUBLE_EQ(storage_bits_per_value(DType::kFP16,
                                          Granularity::kPerRow, 128),
                   16.0);
  EXPECT_DOUBLE_EQ(storage_bits_per_value(DType::kFP8E4M3,
                                          Granularity::kPerTensor, 128),
                   8.0);
}

TEST(StorageBits, IntFormatsAmortizeScales) {
  const double int4_row = storage_bits_per_value(DType::kINT4,
                                                 Granularity::kPerRow, 128);
  EXPECT_NEAR(int4_row, 4.0 + 32.0 / 128.0, 1e-12);
  const double int4_tensor = storage_bits_per_value(
      DType::kINT4, Granularity::kPerTensor, 128);
  EXPECT_LT(int4_tensor, int4_row);
}

TEST(QuantError, SnrComputation) {
  QuantError e;
  e.rel_err = 0.01;
  e.mse = 1e-4;
  EXPECT_NEAR(e.snr_db(), 40.0, 1e-9);
}

}  // namespace
}  // namespace mib::quant
