#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "quant/quantize.h"

namespace mib::quant {
namespace {

TEST(GroupQuant, FinerThanPerRowOnScaleBursts) {
  // A row whose magnitude jumps mid-row: per-row wastes range on the quiet
  // half; per-group (128) isolates the burst.
  Rng rng(3);
  Tensor t({4, 256});
  for (std::size_t r = 0; r < 4; ++r) {
    auto row = t.row(r);
    for (std::size_t j = 0; j < 256; ++j) {
      const float scale = j < 128 ? 0.01f : 10.0f;
      row[j] = static_cast<float>(rng.normal()) * scale;
    }
  }
  Tensor t2 = t;
  const auto per_row =
      fake_quantize_tensor(t, DType::kINT4, Granularity::kPerRow);
  const auto per_group =
      fake_quantize_tensor(t2, DType::kINT4, Granularity::kPerGroup);
  EXPECT_LT(per_group.rel_err, per_row.rel_err);
  // The quiet half survives under per-group but is wiped per-row.
  float quiet_row = 0.0f, quiet_group = 0.0f;
  for (std::size_t j = 0; j < 128; ++j) {
    quiet_row += std::abs(t.at(0, j));
    quiet_group += std::abs(t2.at(0, j));
  }
  EXPECT_EQ(quiet_row, 0.0f);
  EXPECT_GT(quiet_group, 0.0f);
}

TEST(GroupQuant, EqualsPerRowWhenRowFitsOneGroup) {
  Rng rng(5);
  Tensor a = Tensor::randn({8, 128}, rng, 0.1f);
  Tensor b = a;
  const auto er = fake_quantize_tensor(a, DType::kINT8, Granularity::kPerRow);
  const auto eg =
      fake_quantize_tensor(b, DType::kINT8, Granularity::kPerGroup);
  EXPECT_DOUBLE_EQ(er.rel_err, eg.rel_err);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(GroupQuant, HandlesRaggedTail) {
  // Row of 200 = one full group of 128 + a 72-element tail.
  Rng rng(7);
  Tensor t = Tensor::randn({2, 200}, rng, 0.1f);
  const auto err =
      fake_quantize_tensor(t, DType::kINT4, Granularity::kPerGroup);
  EXPECT_GT(err.rel_err, 0.0);
  EXPECT_LT(err.rel_err, 0.25);
}

TEST(GroupQuant, StorageOverheadBetweenRowAndTensor) {
  const double tensor_bits =
      storage_bits_per_value(DType::kINT4, Granularity::kPerTensor, 4096);
  const double row_bits =
      storage_bits_per_value(DType::kINT4, Granularity::kPerRow, 4096);
  const double group_bits =
      storage_bits_per_value(DType::kINT4, Granularity::kPerGroup, 4096);
  EXPECT_LT(tensor_bits, row_bits);
  EXPECT_LT(row_bits, group_bits);
  // GPTQ-style int4 g128: 4 + 32/128 = 4.25 bits/value.
  EXPECT_NEAR(group_bits, 4.25, 1e-12);
}

TEST(GroupQuant, ErrorOrderingAcrossGranularities) {
  // Gaussian weights with per-row scale drift: group <= row <= tensor.
  Rng rng(9);
  Tensor base({16, 512});
  for (std::size_t r = 0; r < 16; ++r) {
    const float s = 0.01f * static_cast<float>(r + 1);
    for (auto& v : base.row(r)) v = static_cast<float>(rng.normal()) * s;
  }
  auto err = [&](Granularity g) {
    Tensor t = base;
    return fake_quantize_tensor(t, DType::kINT4, g).rel_err;
  };
  const double eg = err(Granularity::kPerGroup);
  const double er = err(Granularity::kPerRow);
  const double et = err(Granularity::kPerTensor);
  EXPECT_LE(eg, er * 1.001);
  EXPECT_LT(er, et);
}

}  // namespace
}  // namespace mib::quant
