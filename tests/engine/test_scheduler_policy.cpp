#include <gtest/gtest.h>

#include "engine/scheduler.h"
#include "models/zoo.h"
#include "workload/generator.h"

namespace mib::engine {
namespace {

EngineConfig engine_cfg() {
  EngineConfig c;
  c.model = models::olmoe_1b_7b();
  c.cluster = hw::Cluster::h100_node(1);
  return c;
}

std::vector<Request> mixed_trace(int n = 64) {
  workload::TraceConfig tc;
  tc.n_requests = n;
  tc.input = {32, 2048, 1.2};
  tc.output = {32, 1024, 1.2};
  return workload::generate_trace(tc);
}

TEST(SchedulerPolicy, SjfCutsMedianTtftUnderBacklog) {
  SchedulerConfig fcfs;
  fcfs.max_batch = 8;  // tight batch: a backlog forms at t=0
  SchedulerConfig sjf = fcfs;
  sjf.policy = QueuePolicy::kShortestFirst;

  const auto trace = mixed_trace();
  const auto rf = ServingSimulator(engine_cfg(), fcfs).run(trace);
  const auto rs = ServingSimulator(engine_cfg(), sjf).run(trace);
  // SJF serves the short-job majority first: median e2e falls.
  EXPECT_LT(rs.e2e_s.percentile(50), rf.e2e_s.percentile(50));
  // Conservation holds under both policies.
  ASSERT_EQ(rs.requests.size(), trace.size());
  ASSERT_EQ(rf.requests.size(), trace.size());
}

TEST(SchedulerPolicy, SjfDoesNotChangeTotalWork) {
  SchedulerConfig fcfs;
  fcfs.max_batch = 8;
  SchedulerConfig sjf = fcfs;
  sjf.policy = QueuePolicy::kShortestFirst;
  const auto trace = mixed_trace(32);
  const auto rf = ServingSimulator(engine_cfg(), fcfs).run(trace);
  const auto rs = ServingSimulator(engine_cfg(), sjf).run(trace);
  // Same tokens served; makespans comparable (within 25%).
  EXPECT_NEAR(rs.makespan_s, rf.makespan_s, 0.25 * rf.makespan_s);
}

TEST(SchedulerPolicy, SjfRespectsArrivalTimes) {
  SchedulerConfig sjf;
  sjf.policy = QueuePolicy::kShortestFirst;
  sjf.arrival_rate_qps = 5.0;
  const auto rep = ServingSimulator(engine_cfg(), sjf).run(mixed_trace(24));
  for (const auto& o : rep.requests) {
    EXPECT_GE(o.first_token_s, o.arrival_s);  // never served before arrival
  }
}

TEST(SchedulerPolicy, FcfsOrderingPreservedWithoutPressure) {
  // With a huge batch limit everything is admitted at once under either
  // policy; FCFS completes identical work.
  SchedulerConfig fcfs;
  const auto trace = mixed_trace(16);
  const auto r = ServingSimulator(engine_cfg(), fcfs).run(trace);
  ASSERT_EQ(r.requests.size(), 16u);
  EXPECT_EQ(r.preemptions, 0);
}

}  // namespace
}  // namespace mib::engine
