#include "engine/offload.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "core/scenario.h"
#include "models/zoo.h"

namespace mib::engine {
namespace {

EngineConfig cfg(const char* model = "OLMoE-1B-7B", double skew = 0.0) {
  core::Scenario s;
  s.model = model;
  s.routing_skew = skew;
  return s.engine_config();
}

TEST(Offload, FullResidencyMatchesPlainEngine) {
  OffloadEngine off(cfg(), OffloadConfig{1.0});
  const SimEngine plain(cfg());
  const auto a = off.run(16, 512, 512);
  const auto b = plain.run(16, 512, 512);
  EXPECT_DOUBLE_EQ(a.miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(a.fetch_per_step_s, 0.0);
  EXPECT_NEAR(a.run.e2e_s, b.e2e_s, b.e2e_s * 0.02);
  EXPECT_NEAR(a.hbm_weight_gib, a.full_weight_gib, 1e-9);
}

TEST(Offload, ResidencyCutsHbmFootprint) {
  OffloadEngine half(cfg(), OffloadConfig{0.5});
  const auto m = half.run(8, 256, 256);
  EXPECT_LT(m.hbm_weight_gib, 0.6 * m.full_weight_gib);
  EXPECT_GT(m.hbm_weight_gib, 0.3 * m.full_weight_gib);
}

TEST(Offload, ThroughputDegradesMonotonically) {
  double prev = 1e18;
  for (double r : {1.0, 0.75, 0.5, 0.25}) {
    OffloadEngine e(cfg(), OffloadConfig{r});
    const double thr = e.run(16, 512, 512).run.throughput_tok_s;
    EXPECT_LT(thr, prev * 1.001) << "r=" << r;
    prev = thr;
  }
}

TEST(Offload, SkewedRoutingMakesOffloadingCheap) {
  // With Zipf routing the popular experts stay resident: the miss rate at
  // 25% residency is far below the uniform 75%.
  OffloadEngine uniform(cfg("OLMoE-1B-7B", 0.0), OffloadConfig{0.25});
  OffloadEngine skewed(cfg("OLMoE-1B-7B", 1.5), OffloadConfig{0.25});
  EXPECT_NEAR(uniform.miss_probability(), 0.75, 0.01);
  EXPECT_LT(skewed.miss_probability(), 0.35);
  const auto u = uniform.run(16, 512, 512);
  const auto s = skewed.run(16, 512, 512);
  EXPECT_LT(s.fetch_per_step_s, u.fetch_per_step_s);
}

TEST(Offload, FitsModelsThatOtherwiseOom) {
  // Mixtral fp16 needs ~93 GiB: OOM on one H100 resident, feasible at 50%
  // expert residency (small batch keeps KV modest).
  const SimEngine plain(cfg("Mixtral-8x7B"));
  EXPECT_THROW(plain.run(1, 256, 256), OutOfMemoryError);
  OffloadEngine off(cfg("Mixtral-8x7B"), OffloadConfig{0.5});
  const auto m = off.run(1, 256, 256);
  EXPECT_GT(m.run.throughput_tok_s, 0.0);
  EXPECT_LT(m.run.memory.weights / kGiB, 72.0);
  // But it is not free: far slower than the TP2 all-resident deployment.
  core::Scenario tp2;
  tp2.model = "Mixtral-8x7B";
  tp2.n_devices = 2;
  EXPECT_LT(m.run.throughput_tok_s, tp2.run().throughput_tok_s);
}

TEST(Offload, ResidentSetNeverBelowTopK) {
  OffloadEngine e(cfg(), OffloadConfig{0.01});  // would be < top_k experts
  const auto m = e.run(4, 128, 128);
  // OLMoE top-8 of 64: at least 8 experts stay resident.
  EXPECT_LT(m.miss_rate, 1.0 - 8.0 / 64.0 + 1e-9);
}

TEST(Offload, Validation) {
  EXPECT_THROW(OffloadEngine(cfg(), OffloadConfig{0.0}), Error);
  EXPECT_THROW(OffloadEngine(cfg(), OffloadConfig{1.5}), Error);
  EXPECT_THROW(OffloadEngine(cfg("Qwen3-1.7B"), OffloadConfig{0.5}), Error);
}

}  // namespace
}  // namespace mib::engine
