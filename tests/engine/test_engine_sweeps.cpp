// Broad parameterized sweeps over the zoo x precision x hardware space:
#include <cctype>
#include <cmath>
// global sanity invariants that every simulated configuration must satisfy.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "models/params.h"

namespace mib::engine {
namespace {

struct SweepCase {
  const char* model;
  const char* device;
  DType dtype;
};

class EngineSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(EngineSweep, MetricsSane) {
  const auto p = GetParam();
  core::Scenario s;
  s.model = p.model;
  s.device = p.device;
  s.weight_dtype = p.dtype;
  const auto m = models::model_by_name(p.model);
  const double bytes = models::weight_bytes(m, p.dtype);
  const double dev_mem = hw::device_by_name(p.device).usable_mem();
  s.n_devices =
      std::string(p.device) == "cs3"
          ? 1
          : std::max(1, static_cast<int>(std::ceil(bytes / (0.8 * dev_mem))));
  // TP degree must divide head count; bump to the next power of two.
  while (m.n_heads % s.n_devices != 0) ++s.n_devices;
  s.batch = 8;
  s.input_tokens = s.output_tokens = 512;

  const auto r = s.run();
  EXPECT_GT(r.ttft_s, 0.0);
  EXPECT_GT(r.e2e_s, r.ttft_s);
  EXPECT_GT(r.throughput_tok_s, 10.0);
  EXPECT_LT(r.throughput_tok_s, 1e7);
  EXPECT_GT(r.itl_s, 0.0);
  EXPECT_LT(r.itl_s, 1.0);
  EXPECT_LE(r.memory.total(),
            hw::device_by_name(p.device).usable_mem() * 1.001);

  // Monotonicity spot-check: doubling the batch never lowers throughput by
  // more than rounding (wave boundaries aside, it should rise).
  const auto r2 = s.with_batch(16).run();
  if (r2.waves == r.waves) {
    EXPECT_GE(r2.throughput_tok_s, r.throughput_tok_s * 0.95);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooByHardware, EngineSweep,
    ::testing::Values(
        SweepCase{"OLMoE-1B-7B", "h100", DType::kFP16},
        SweepCase{"OLMoE-1B-7B", "h100", DType::kFP8E4M3},
        SweepCase{"OLMoE-1B-7B", "h100", DType::kINT4},
        SweepCase{"OLMoE-1B-7B", "a100", DType::kFP16},
        SweepCase{"OLMoE-1B-7B", "h200", DType::kFP16},
        SweepCase{"OLMoE-1B-7B", "b200", DType::kFP16},
        SweepCase{"OLMoE-1B-7B", "cs3", DType::kFP16},
        SweepCase{"Mixtral-8x7B", "h100", DType::kFP16},
        SweepCase{"Mixtral-8x7B", "h100", DType::kFP8E4M3},
        SweepCase{"Mixtral-8x7B", "b200", DType::kFP16},
        SweepCase{"Qwen1.5-MoE-A2.7B", "h100", DType::kFP16},
        SweepCase{"Qwen3-30B-A3B", "h100", DType::kFP8E4M3},
        SweepCase{"DeepSeek-V2-Lite", "h100", DType::kFP16},
        SweepCase{"DeepSeek-V2-Lite", "h200", DType::kINT8},
        SweepCase{"Phi-3.5-MoE", "h100", DType::kFP16},
        SweepCase{"Llama-4-Scout-17B-16E", "h100", DType::kFP8E4M3},
        SweepCase{"Llama-4-Scout-17B-16E", "cs3", DType::kFP8E4M3},
        SweepCase{"Qwen3-8B", "h100", DType::kFP16},
        SweepCase{"Qwen3-0.6B", "h100", DType::kFP16}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      std::string n = param_info.param.model;
      n += "_";
      n += param_info.param.device;
      n += "_";
      n += dtype_name(param_info.param.dtype);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

// VLM sweep: image inputs behave across devices.
class VlmSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(VlmSweep, ImagesPriceIn) {
  core::Scenario s;
  s.model = GetParam();
  s.batch = 8;
  s.input_tokens = s.output_tokens = 256;
  const auto text = s.run();
  s.images_per_request = 2;
  const auto vlm = s.run();
  EXPECT_GT(vlm.ttft_s, text.ttft_s);
  EXPECT_GT(vlm.e2e_s, text.e2e_s);
  EXPECT_LT(vlm.samples_per_s, text.samples_per_s);
  EXPECT_GT(vlm.memory.kv_cache, text.memory.kv_cache);  // image tokens
}

INSTANTIATE_TEST_SUITE_P(VlmFamily, VlmSweep,
                         ::testing::Values("DeepSeek-VL2-Tiny",
                                           "DeepSeek-VL2-Small",
                                           "DeepSeek-VL2", "MolmoE-1B"),
                         [](const ::testing::TestParamInfo<const char*>& i) {
                           std::string n = i.param;
                           for (char& c : n) {
                             if (!std::isalnum(
                                     static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return n;
                         });

}  // namespace
}  // namespace mib::engine
