#include "engine/memory.h"

#include <gtest/gtest.h>

#include "common/units.h"
#include "models/params.h"
#include "models/zoo.h"

namespace mib::engine {
namespace {

using models::deepseek_v2_lite;
using models::mixtral_8x7b;
using models::olmoe_1b_7b;
using parallel::ParallelPlan;

MemoryModel make(const models::ModelConfig& m, ParallelPlan p,
                 DType w = DType::kFP16) {
  return MemoryModel(m, p, w, DType::kFP16, DType::kFP16);
}

TEST(MemoryModel, WeightsShardAcrossDevices) {
  const auto m = mixtral_8x7b();
  const double w1 = make(m, ParallelPlan{1, 1, false})
                        .weight_bytes_per_device();
  const double w4 = make(m, ParallelPlan{4, 1, false})
                        .weight_bytes_per_device();
  EXPECT_NEAR(w4, w1 / 4.0, w1 * 1e-9);
  const double wpp = make(m, ParallelPlan{1, 4, false})
                         .weight_bytes_per_device();
  EXPECT_NEAR(wpp, w1 / 4.0, w1 * 1e-9);
}

TEST(MemoryModel, MixtralFp16NeedsMultipleH100s) {
  const auto m = mixtral_8x7b();
  const auto dev = hw::h100_sxm5();
  // ~93 GiB of fp16 weights: a single 80 GiB H100 OOMs.
  EXPECT_THROW(make(m, ParallelPlan{1, 1, false}).check(1, 128, 128, dev),
               OutOfMemoryError);
  // TP2 fits.
  make(m, ParallelPlan{2, 1, false}).check(1, 128, 128, dev);
}

TEST(MemoryModel, Fp8HalvesWeightFootprint) {
  const auto m = mixtral_8x7b();
  const double fp16 = make(m, ParallelPlan{1, 1, false}, DType::kFP16)
                          .weight_bytes_per_device();
  const double fp8 = make(m, ParallelPlan{1, 1, false}, DType::kFP8E4M3)
                         .weight_bytes_per_device();
  EXPECT_NEAR(fp8 / fp16, 0.5, 0.01);
}

TEST(MemoryModel, MlaKvIsCompressedAndTpReplicated) {
  const auto ds = deepseek_v2_lite();
  const auto mm1 = make(ds, ParallelPlan{1, 1, false});
  const auto mm2 = make(ds, ParallelPlan{2, 1, false});
  // MLA latent replicates across TP: per-token-per-device KV unchanged.
  EXPECT_DOUBLE_EQ(mm1.kv_bytes_per_token_per_device(),
                   mm2.kv_bytes_per_token_per_device());
  // 1152 bytes/layer * 27 layers.
  EXPECT_DOUBLE_EQ(mm1.kv_bytes_per_token_per_device(), 1152.0 * 27);
}

TEST(MemoryModel, GqaKvShardsAcrossTp) {
  const auto m = mixtral_8x7b();
  const auto mm1 = make(m, ParallelPlan{1, 1, false});
  const auto mm4 = make(m, ParallelPlan{4, 1, false});
  EXPECT_NEAR(mm4.kv_bytes_per_token_per_device(),
              mm1.kv_bytes_per_token_per_device() / 4.0, 1e-9);
  // Sharding saturates at one KV head per rank (8 heads).
  const auto mm8 = make(m, ParallelPlan{8, 1, false});
  const auto mm8b = MemoryModel(m, ParallelPlan{8, 1, false}, DType::kFP16,
                                DType::kFP16, DType::kFP16);
  EXPECT_DOUBLE_EQ(mm8.kv_bytes_per_token_per_device(),
                   mm8b.kv_bytes_per_token_per_device());
  EXPECT_NEAR(mm8.kv_bytes_per_token_per_device(),
              mm1.kv_bytes_per_token_per_device() / 8.0, 1e-9);
}

TEST(MemoryModel, BreakdownComposes) {
  const auto m = olmoe_1b_7b();
  const auto mm = make(m, ParallelPlan{1, 1, false});
  const auto b = mm.breakdown(8, 4096, 4096);
  EXPECT_GT(b.weights, 0.0);
  EXPECT_GT(b.kv_cache, 0.0);
  EXPECT_GT(b.activations, 0.0);
  EXPECT_DOUBLE_EQ(b.total(), b.weights + b.kv_cache + b.activations);
  EXPECT_NEAR(b.kv_cache,
              8.0 * 4096 * mm.kv_bytes_per_token_per_device(), 1.0);
}

TEST(MemoryModel, MaxConcurrentSeqsMonotone) {
  const auto m = olmoe_1b_7b();
  const auto mm = make(m, ParallelPlan{1, 1, false});
  const auto dev = hw::h100_sxm5();
  const int at_2k = mm.max_concurrent_seqs(2048, 2048, dev);
  const int at_8k = mm.max_concurrent_seqs(8192, 2048, dev);
  EXPECT_GT(at_2k, at_8k);
  EXPECT_GT(at_8k, 0);
}

TEST(MemoryModel, MaxConcurrentSeqsZeroWhenWeightsDontFit) {
  const auto m = mixtral_8x7b();
  const auto mm = make(m, ParallelPlan{1, 1, false});
  EXPECT_EQ(mm.max_concurrent_seqs(2048, 2048, hw::h100_sxm5()), 0);
}

TEST(MemoryModel, ActivationWatermarkScalesWithTokens) {
  const auto m = olmoe_1b_7b();
  const auto mm = make(m, ParallelPlan{1, 1, false});
  EXPECT_NEAR(mm.activation_bytes(2000), 2.0 * mm.activation_bytes(1000),
              1e-6);
}

TEST(MemoryModel, EpKeepsWholeExpertActivations) {
  const auto m = olmoe_1b_7b();
  const double tp = make(m, ParallelPlan{4, 1, false}).activation_bytes(1024);
  const double ep = make(m, ParallelPlan{4, 1, true}).activation_bytes(1024);
  EXPECT_GT(ep, tp);  // whole experts -> wider transient per token
}

TEST(MemoryModel, OomMessageCarriesSizes) {
  const auto m = mixtral_8x7b();
  const auto mm = make(m, ParallelPlan{1, 1, false});
  try {
    mm.check(1, 2048, 2048, hw::h100_sxm5());
    FAIL() << "expected OOM";
  } catch (const OutOfMemoryError& e) {
    EXPECT_GT(e.required_gib(), e.available_gib());
    EXPECT_NE(std::string(e.what()).find("Mixtral"), std::string::npos);
  }
}

}  // namespace
}  // namespace mib::engine
