#include <gtest/gtest.h>

#include "common/error.h"
#include "engine/kv_cache.h"

namespace mib::engine {
namespace {

TEST(PrefixCache, SecondSequenceSharesBlocks) {
  PagedKvCache c(100, 16);
  const int a = c.add_sequence_with_prefix(0xABCD, 64);  // miss: 4 blocks
  ASSERT_GE(a, 0);
  EXPECT_EQ(c.used_blocks(), 4u);
  EXPECT_EQ(c.sequence_tokens(a), 64);

  const int b = c.add_sequence_with_prefix(0xABCD, 64);  // hit: 0 new blocks
  ASSERT_GE(b, 0);
  EXPECT_EQ(c.used_blocks(), 4u);
  EXPECT_EQ(c.sequence_tokens(b), 64);
  EXPECT_TRUE(c.prefix_cached(0xABCD));
}

TEST(PrefixCache, GrowthPastPrefixIsPrivate) {
  PagedKvCache c(100, 16);
  const int a = c.add_sequence_with_prefix(7, 32);  // 2 shared blocks
  const int b = c.add_sequence_with_prefix(7, 32);
  EXPECT_TRUE(c.append_tokens(a, 16));  // 1 private block for a
  EXPECT_TRUE(c.append_tokens(b, 16));  // 1 private block for b
  EXPECT_EQ(c.used_blocks(), 2u + 1u + 1u);
  EXPECT_EQ(c.sequence_blocks(a), 1u);  // private only
  EXPECT_EQ(c.sequence_tokens(a), 48);
}

TEST(PrefixCache, FreeKeepsPrefixResidentUntilEviction) {
  PagedKvCache c(10, 16);
  const int a = c.add_sequence_with_prefix(42, 48);  // 3 blocks
  c.free_sequence(a);
  EXPECT_TRUE(c.prefix_cached(42));
  EXPECT_EQ(c.reclaimable_blocks(), 3u);
  EXPECT_EQ(c.used_blocks(), 3u);  // still held by the cache
  // A later hit reuses it without allocation.
  const int b = c.add_sequence_with_prefix(42, 48);
  ASSERT_GE(b, 0);
  EXPECT_EQ(c.used_blocks(), 3u);
  EXPECT_EQ(c.reclaimable_blocks(), 0u);  // referenced again
}

TEST(PrefixCache, EvictionFreesUnreferencedPrefixes) {
  PagedKvCache c(6, 16);
  const int a = c.add_sequence_with_prefix(1, 48);  // 3 blocks
  c.free_sequence(a);
  // A plain sequence needing more than the 3 free blocks triggers eviction
  // through append_tokens.
  const int b = c.add_sequence();
  EXPECT_TRUE(c.append_tokens(b, 96));  // 6 blocks: must evict the prefix
  EXPECT_FALSE(c.prefix_cached(1));
  EXPECT_EQ(c.used_blocks(), 6u);
}

TEST(PrefixCache, ReferencedPrefixSurvivesPressure) {
  PagedKvCache c(6, 16);
  const int a = c.add_sequence_with_prefix(1, 48);  // 3 blocks, referenced
  (void)a;
  const int b = c.add_sequence();
  EXPECT_FALSE(c.append_tokens(b, 96));  // cannot evict a live prefix
  EXPECT_TRUE(c.prefix_cached(1));
}

TEST(PrefixCache, MissWithoutRoomReturnsMinusOne) {
  PagedKvCache c(2, 16);
  const int a = c.add_sequence();
  c.append_tokens(a, 32);  // both blocks
  EXPECT_EQ(c.add_sequence_with_prefix(9, 16), -1);
}

TEST(PrefixCache, OccupancyCountsSharedTokensOnce) {
  PagedKvCache c(100, 16);
  for (int i = 0; i < 4; ++i) {
    ASSERT_GE(c.add_sequence_with_prefix(5, 64), 0);
  }
  // 4 sequences x 64 tokens backed by 4 blocks: occupancy stays 1.0 and
  // never exceeds it.
  EXPECT_NEAR(c.occupancy(), 1.0, 1e-12);
  EXPECT_EQ(c.used_blocks(), 4u);
}

TEST(PrefixCache, HashCollisionDetected) {
  PagedKvCache c(100, 16);
  c.add_sequence_with_prefix(3, 32);
  EXPECT_THROW(c.add_sequence_with_prefix(3, 64), Error);
  EXPECT_THROW(c.add_sequence_with_prefix(0, 32), Error);
}

TEST(PrefixCache, SharingMultipliesAdmissionCapacity) {
  // The headline effect: a 1024-token system prompt shared by every chat
  // request lets ~blocks/64 more sequences fit.
  PagedKvCache shared(128, 16);   // 2048-token pool
  PagedKvCache isolated(128, 16);
  int n_shared = 0, n_isolated = 0;
  for (int i = 0; i < 64; ++i) {
    const int id = shared.add_sequence_with_prefix(11, 1024);  // 64 blocks
    if (id >= 0 && shared.append_tokens(id, 16)) ++n_shared;
    const int jd = isolated.add_sequence();
    if (isolated.append_tokens(jd, 1040)) {
      ++n_isolated;
    } else {
      isolated.free_sequence(jd);
    }
  }
  EXPECT_EQ(n_isolated, 1);   // 65 blocks each: only one fits
  EXPECT_GT(n_shared, 30);    // prefix shared: 64 + n blocks total
}

}  // namespace
}  // namespace mib::engine
