#include <gtest/gtest.h>

#include <numeric>

#include "engine/layer_cost.h"
#include "models/zoo.h"

namespace mib::engine {
namespace {

LayerCostModel make(const models::ModelConfig& m, int devices = 1) {
  return LayerCostModel(m, hw::Cluster::h100_node(devices),
                        parallel::tp_plan(devices), CostConfig{});
}

double total_of(const std::vector<OpRecord>& ops) {
  double t = 0.0;
  for (const auto& op : ops) t += op.seconds;
  return t;
}

TEST(Profile, DecodeOpsSumToStepTotal) {
  for (const auto& m :
       {models::olmoe_1b_7b(), models::deepseek_v2_lite(),
        models::qwen3_1_7b()}) {
    const auto lc = make(m);
    const auto ops = lc.profile_decode_step(16, 2048);
    const double total = lc.decode_step(16, 2048).total();
    EXPECT_NEAR(total_of(ops), total, total * 1e-9) << m.name;
  }
}

TEST(Profile, PrefillOpsSumToTotal) {
  const auto lc = make(models::olmoe_1b_7b());
  const auto ops = lc.profile_prefill(8, 1024);
  const double total = lc.prefill(8, 1024).total();
  EXPECT_NEAR(total_of(ops), total, total * 1e-9);
}

TEST(Profile, SortedDescendingWithMergedNames) {
  const auto lc = make(models::olmoe_1b_7b());
  const auto ops = lc.profile_decode_step(16, 2048);
  ASSERT_GT(ops.size(), 4u);
  for (std::size_t i = 1; i < ops.size(); ++i) {
    EXPECT_GE(ops[i - 1].seconds, ops[i].seconds);
  }
  // Names unique after merging.
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (std::size_t j = i + 1; j < ops.size(); ++j) {
      EXPECT_NE(ops[i].name, ops[j].name);
    }
  }
}

TEST(Profile, LayerOpsCarryLayerCounts) {
  const auto lc = make(models::olmoe_1b_7b());  // 16 layers, all MoE
  const auto ops = lc.profile_decode_step(4, 512);
  for (const auto& op : ops) {
    if (op.name == "moe.experts_gate_up" || op.name == "attn.qkvo_proj") {
      EXPECT_EQ(op.instances, 16) << op.name;
    }
    if (op.name == "step.framework_overhead") {
      EXPECT_EQ(op.instances, 1);
    }
  }
}

TEST(Profile, MoEExpertsDominateDecode) {
  // The paper's Fig. 1 premise at runtime: expert weights dominate the
  // decode step for MoE models.
  const auto lc = make(models::olmoe_1b_7b());
  const auto ops = lc.profile_decode_step(32, 2048);
  double moe = 0.0, total = total_of(ops);
  for (const auto& op : ops) {
    if (op.name.rfind("moe.", 0) == 0) moe += op.seconds;
  }
  EXPECT_GT(moe / total, 0.35);
}

TEST(Profile, DenseModelHasNoMoEOps) {
  const auto lc = make(models::qwen3_1_7b());
  for (const auto& op : lc.profile_decode_step(8, 1024)) {
    EXPECT_NE(op.name.rfind("moe.", 0), 0u) << op.name;
  }
}

TEST(Profile, CommOpsAppearUnderTp) {
  const auto lc = make(models::mixtral_8x7b(), 4);
  const auto ops = lc.profile_decode_step(16, 2048);
  bool saw_attn_ar = false, saw_ffn_ar = false;
  for (const auto& op : ops) {
    if (op.name == "comm.attn_allreduce") saw_attn_ar = true;
    if (op.name == "comm.ffn_allreduce") saw_ffn_ar = true;
  }
  EXPECT_TRUE(saw_attn_ar);
  EXPECT_TRUE(saw_ffn_ar);
}

TEST(Profile, VisionOpInVlmPrefill) {
  const auto lc = make(models::deepseek_vl2_tiny());
  const auto ops = lc.profile_prefill(4, 256, 1);
  bool saw = false;
  for (const auto& op : ops) saw |= op.name == "vision.encode";
  EXPECT_TRUE(saw);
}

TEST(Profile, PipelineRejected) {
  const LayerCostModel lc(models::olmoe_1b_7b(), hw::Cluster::h100_node(4),
                          parallel::pp_plan(4), CostConfig{});
  EXPECT_THROW(lc.profile_decode_step(8, 512), Error);
  EXPECT_THROW(lc.profile_prefill(8, 512), Error);
}

TEST(Profile, ProfilingDoesNotPerturbNormalRuns) {
  const auto lc = make(models::deepseek_v2_lite());
  const double before = lc.decode_step(8, 1024).total();
  lc.profile_decode_step(8, 1024);
  const double after = lc.decode_step(8, 1024).total();
  EXPECT_DOUBLE_EQ(before, after);
}

TEST(Profile, FlopsAndBytesAggregated) {
  const auto lc = make(models::olmoe_1b_7b());
  const auto ops = lc.profile_decode_step(16, 2048);
  double bytes = 0.0;
  for (const auto& op : ops) bytes += op.bytes;
  // A decode step at saturated coverage reads most of the 13.8 GiB of
  // weights: total traffic must be in the GB range.
  EXPECT_GT(bytes, 5e9);
  EXPECT_LT(bytes, 50e9);
}

}  // namespace
}  // namespace mib::engine
