#include "engine/engine.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace mib::engine {
namespace {

EngineConfig cfg(const models::ModelConfig& m, int devices = 1) {
  EngineConfig c;
  c.model = m;
  c.cluster = hw::Cluster::h100_node(devices);
  if (devices > 1) c.plan = parallel::tp_plan(devices);
  return c;
}

TEST(SimEngine, MetricsAreConsistent) {
  const SimEngine eng(cfg(models::olmoe_1b_7b()));
  const auto m = eng.run(8, 512, 512);
  EXPECT_GT(m.ttft_s, 0.0);
  EXPECT_GT(m.e2e_s, m.ttft_s);
  // Eq. (2): throughput = batch * (in + out) / e2e.
  EXPECT_NEAR(m.throughput_tok_s, 8.0 * 1024 / m.e2e_s, 1e-6);
  // Eq. (1): ITL = (e2e - ttft) / (batch * out - 1).
  EXPECT_NEAR(m.itl_s, (m.e2e_s - m.ttft_s) / (8.0 * 512 - 1), 1e-9);
  EXPECT_NEAR(m.samples_per_s, 8.0 / m.e2e_s, 1e-9);
  EXPECT_EQ(m.waves, 1);
}

TEST(SimEngine, SingleOutputTokenMeansNoDecode) {
  const SimEngine eng(cfg(models::olmoe_1b_7b()));
  const auto m = eng.run(4, 256, 1);
  EXPECT_NEAR(m.e2e_s, m.ttft_s, 1e-12);
  // No decode steps: (e2e - ttft) / (B*out - 1) is exactly zero.
  EXPECT_DOUBLE_EQ(m.itl_s, 0.0);
  EXPECT_DOUBLE_EQ(m.decode_tok_s, 0.0);
}

TEST(SimEngine, ThroughputImprovesWithBatch) {
  const SimEngine eng(cfg(models::deepseek_v2_lite()));
  double prev = 0.0;
  for (int b : {1, 16, 32, 64}) {
    const auto m = eng.run(b, 1024, 1024);
    EXPECT_GT(m.throughput_tok_s, prev) << "batch " << b;
    prev = m.throughput_tok_s;
  }
}

TEST(SimEngine, ShorterSequencesHigherThroughputAtLargeBatch) {
  const SimEngine eng(cfg(models::deepseek_v2_lite()));
  const auto short_seq = eng.run(64, 128, 128);
  const auto long_seq = eng.run(64, 2048, 2048);
  EXPECT_GT(short_seq.throughput_tok_s, long_seq.throughput_tok_s);
}

TEST(SimEngine, WavesTriggerUnderKvPressure) {
  // Qwen1.5-MoE has fat MHA KV: batch 128 at 4k context exceeds one H100.
  const SimEngine eng(cfg(models::qwen15_moe_a27b()));
  const auto m = eng.run(128, 2048, 2048);
  EXPECT_GT(m.waves, 1);
  const int fits = eng.max_batch_without_waves(2048, 2048);
  EXPECT_LT(fits, 128);
  const auto small = eng.run(std::max(1, fits / 2), 2048, 2048);
  EXPECT_EQ(small.waves, 1);
}

TEST(SimEngine, WaveSchedulingCostsThroughput) {
  auto c = cfg(models::qwen15_moe_a27b());
  const SimEngine eng(c);
  const auto waved = eng.run(128, 2048, 2048);
  const auto single = eng.run(64, 2048, 2048);
  // Two waves of 64 take ~2x one wave: total throughput does not double.
  EXPECT_LT(waved.throughput_tok_s, 1.3 * single.throughput_tok_s);
}

TEST(SimEngine, WaveSchedulingCanBeDisabled) {
  auto c = cfg(models::qwen15_moe_a27b());
  c.allow_wave_scheduling = false;
  const SimEngine eng(c);
  EXPECT_THROW(eng.run(128, 2048, 2048), OutOfMemoryError);
}

TEST(SimEngine, OomWhenWeightsDontFit) {
  const SimEngine eng(cfg(models::mixtral_8x7b(), 1));
  EXPECT_THROW(eng.run(1, 128, 128), OutOfMemoryError);
}

TEST(SimEngine, MixtralRunsOnFourGpus) {
  const SimEngine eng(cfg(models::mixtral_8x7b(), 4));
  const auto m = eng.run(16, 1024, 1024);
  EXPECT_GT(m.throughput_tok_s, 0.0);
}

TEST(SimEngine, ImagesIncreaseTtft) {
  const SimEngine eng(cfg(models::deepseek_vl2_tiny()));
  const auto text = eng.run(8, 512, 512, 0);
  const auto vlm = eng.run(8, 512, 512, 1);
  EXPECT_GT(vlm.ttft_s, text.ttft_s);
  EXPECT_LT(vlm.samples_per_s, text.samples_per_s);
}

TEST(SimEngine, BreakdownsAccumulate) {
  const SimEngine eng(cfg(models::deepseek_v2_lite()));
  const auto m = eng.run(8, 512, 512);
  EXPECT_GT(m.prefill_breakdown.total(), 0.0);
  EXPECT_GT(m.decode_breakdown.total(), 0.0);
  EXPECT_NEAR(m.prefill_breakdown.total() + m.decode_breakdown.total(),
              m.e2e_s, m.e2e_s * 0.01);
  EXPECT_GT(m.decode_breakdown.ffn, 0.0);
  EXPECT_GT(m.memory.weights, 0.0);
}

TEST(SimEngine, DecodeTokRateSaneVsItl) {
  const SimEngine eng(cfg(models::olmoe_1b_7b()));
  const auto m = eng.run(16, 1024, 1024);
  // decode_tok_s = batch * (out-1) / decode_time and
  // itl = decode_time / (batch*out - 1) are near-reciprocal.
  EXPECT_NEAR(m.decode_tok_s * m.itl_s, 1.0, 0.01);
}

TEST(SimEngine, InvalidArgs) {
  const SimEngine eng(cfg(models::olmoe_1b_7b()));
  EXPECT_THROW(eng.run(0, 128, 128), Error);
  EXPECT_THROW(eng.run(1, 0, 128), Error);
  EXPECT_THROW(eng.run(1, 128, 0), Error);
}

TEST(SimEngine, DeterministicResults) {
  const SimEngine a(cfg(models::olmoe_1b_7b()));
  const SimEngine b(cfg(models::olmoe_1b_7b()));
  EXPECT_DOUBLE_EQ(a.run(8, 512, 512).e2e_s, b.run(8, 512, 512).e2e_s);
}

}  // namespace
}  // namespace mib::engine
