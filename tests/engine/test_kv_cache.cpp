#include "engine/kv_cache.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::engine {
namespace {

TEST(PagedKvCache, BlocksForTokens) {
  PagedKvCache c(100, 16);
  EXPECT_EQ(c.blocks_for_tokens(0), 0u);
  EXPECT_EQ(c.blocks_for_tokens(1), 1u);
  EXPECT_EQ(c.blocks_for_tokens(16), 1u);
  EXPECT_EQ(c.blocks_for_tokens(17), 2u);
  EXPECT_EQ(c.blocks_for_tokens(160), 10u);
}

TEST(PagedKvCache, AllocatesLazily) {
  PagedKvCache c(10, 16);
  const int s = c.add_sequence();
  EXPECT_EQ(c.used_blocks(), 0u);
  EXPECT_TRUE(c.append_tokens(s, 10));
  EXPECT_EQ(c.used_blocks(), 1u);
  EXPECT_TRUE(c.append_tokens(s, 6));  // fills block exactly
  EXPECT_EQ(c.used_blocks(), 1u);
  EXPECT_TRUE(c.append_tokens(s, 1));
  EXPECT_EQ(c.used_blocks(), 2u);
  EXPECT_EQ(c.sequence_tokens(s), 17);
  EXPECT_EQ(c.sequence_blocks(s), 2u);
}

TEST(PagedKvCache, RejectsWhenFullWithoutSideEffects) {
  PagedKvCache c(2, 16);
  const int s = c.add_sequence();
  EXPECT_TRUE(c.append_tokens(s, 32));
  EXPECT_EQ(c.free_blocks(), 0u);
  EXPECT_FALSE(c.append_tokens(s, 1));
  EXPECT_EQ(c.sequence_tokens(s), 32);  // unchanged
  EXPECT_EQ(c.used_blocks(), 2u);
}

TEST(PagedKvCache, FreeReturnsBlocks) {
  PagedKvCache c(4, 16);
  const int a = c.add_sequence();
  const int b = c.add_sequence();
  EXPECT_TRUE(c.append_tokens(a, 32));
  EXPECT_TRUE(c.append_tokens(b, 32));
  EXPECT_EQ(c.free_blocks(), 0u);
  c.free_sequence(a);
  EXPECT_EQ(c.free_blocks(), 2u);
  const int d = c.add_sequence();
  EXPECT_TRUE(c.append_tokens(d, 32));
}

TEST(PagedKvCache, OccupancyTracksWaste) {
  PagedKvCache c(10, 16);
  const int s = c.add_sequence();
  c.append_tokens(s, 1);  // 1 token in a 16-token block
  EXPECT_NEAR(c.occupancy(), 1.0 / 16.0, 1e-12);
  c.append_tokens(s, 15);
  EXPECT_NEAR(c.occupancy(), 1.0, 1e-12);
  EXPECT_NEAR(PagedKvCache(4, 16).occupancy(), 1.0, 1e-12);  // empty
}

TEST(PagedKvCache, CanAdmit) {
  PagedKvCache c(4, 16);
  EXPECT_TRUE(c.can_admit(64));
  EXPECT_FALSE(c.can_admit(65));
  const int s = c.add_sequence();
  c.append_tokens(s, 33);  // 3 blocks
  EXPECT_TRUE(c.can_admit(16));
  EXPECT_FALSE(c.can_admit(17));
}

TEST(PagedKvCache, ManySequencesInterleaved) {
  PagedKvCache c(64, 8);
  std::vector<int> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(c.add_sequence());
    EXPECT_TRUE(c.append_tokens(ids.back(), 8 + i));
  }
  // Free every other sequence; remaining state stays consistent.
  std::size_t freed = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    freed += c.sequence_blocks(ids[i]);
    c.free_sequence(ids[i]);
  }
  EXPECT_EQ(c.free_blocks(),
            64u - (c.used_blocks()));
  for (std::size_t i = 1; i < ids.size(); i += 2) {
    EXPECT_EQ(c.sequence_tokens(ids[i]), 8 + static_cast<int>(i));
  }
}

TEST(PagedKvCache, UnknownSequenceThrows) {
  PagedKvCache c(4, 16);
  EXPECT_THROW(c.append_tokens(99, 1), Error);
  EXPECT_THROW(c.sequence_tokens(99), Error);
  EXPECT_THROW(c.free_sequence(99), Error);
}

TEST(PagedKvCache, ConstructionValidation) {
  EXPECT_THROW(PagedKvCache(0, 16), Error);
  EXPECT_THROW(PagedKvCache(4, 0), Error);
}

}  // namespace
}  // namespace mib::engine
