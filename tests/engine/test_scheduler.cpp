#include "engine/scheduler.h"

#include <gtest/gtest.h>

#include "models/zoo.h"
#include "workload/generator.h"

namespace mib::engine {
namespace {

EngineConfig engine_cfg() {
  EngineConfig c;
  c.model = models::olmoe_1b_7b();
  c.cluster = hw::Cluster::h100_node(1);
  return c;
}

std::vector<Request> uniform(int n, int in, int out) {
  return make_uniform_batch(n, in, out);
}

TEST(Scheduler, AllRequestsComplete) {
  ServingSimulator sim(engine_cfg(), SchedulerConfig{});
  const auto rep = sim.run(uniform(32, 256, 128));
  ASSERT_EQ(rep.requests.size(), 32u);
  for (const auto& o : rep.requests) {
    EXPECT_GT(o.first_token_s, o.arrival_s);
    EXPECT_GE(o.finish_s, o.first_token_s);
    EXPECT_EQ(o.output_tokens, 128);
  }
  EXPECT_GT(rep.throughput_tok_s, 0.0);
  EXPECT_GT(rep.goodput_tok_s, 0.0);
  EXPECT_LT(rep.goodput_tok_s, rep.throughput_tok_s);
}

TEST(Scheduler, DeterministicAcrossRuns) {
  SchedulerConfig sc;
  sc.arrival_rate_qps = 20.0;
  ServingSimulator sim(engine_cfg(), sc);
  const auto trace = uniform(24, 512, 64);
  const auto a = sim.run(trace);
  const auto b = sim.run(trace);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.preemptions, b.preemptions);
}

TEST(Scheduler, StaticBatchingIsSlowerOnMixedLengths) {
  workload::TraceConfig tc;
  tc.n_requests = 48;
  tc.input = {64, 1024, 1.2};
  tc.output = {32, 512, 1.2};
  const auto trace = workload::generate_trace(tc);

  SchedulerConfig cont;
  cont.continuous_batching = true;
  cont.max_batch = 16;
  SchedulerConfig stat = cont;
  stat.continuous_batching = false;

  const auto cont_rep = ServingSimulator(engine_cfg(), cont).run(trace);
  const auto stat_rep = ServingSimulator(engine_cfg(), stat).run(trace);
  // Static gang batching drains to empty before readmitting: strictly
  // lower occupancy and longer makespan on a mixed-length trace.
  EXPECT_LT(stat_rep.mean_running_batch, cont_rep.mean_running_batch);
  EXPECT_GT(stat_rep.makespan_s, cont_rep.makespan_s);
}

TEST(Scheduler, TtftGrowsWithLoad) {
  SchedulerConfig light;
  light.arrival_rate_qps = 1.0;
  SchedulerConfig heavy;
  heavy.arrival_rate_qps = 1000.0;
  const auto trace = uniform(32, 1024, 128);
  const auto l = ServingSimulator(engine_cfg(), light).run(trace);
  const auto h = ServingSimulator(engine_cfg(), heavy).run(trace);
  // Under heavy load requests queue behind each other: p95 TTFT inflates.
  EXPECT_GT(h.ttft_s.percentile(95), l.ttft_s.percentile(95));
  // Lightly-loaded system is mostly idle: lower total throughput.
  EXPECT_LT(l.throughput_tok_s, h.throughput_tok_s);
}

TEST(Scheduler, MaxBatchCapsOccupancy) {
  SchedulerConfig sc;
  sc.max_batch = 4;
  ServingSimulator sim(engine_cfg(), sc);
  const auto rep = sim.run(uniform(32, 128, 64));
  EXPECT_LE(rep.mean_running_batch, 4.0 + 1e-9);
}

TEST(Scheduler, PreemptionUnderKvPressure) {
  // Qwen1.5's fat MHA KV: admit optimistically, then run out as contexts
  // grow -> preemptions (vLLM recompute).
  EngineConfig c;
  c.model = models::qwen15_moe_a27b();
  c.cluster = hw::Cluster::h100_node(1);
  SchedulerConfig sc;
  sc.max_batch = 512;
  ServingSimulator sim(c, sc);
  const auto cap = sim.kv_token_capacity();
  // Requests that together need ~2x the KV pool.
  const int n = static_cast<int>(2 * cap / 4096) + 1;
  const auto rep = sim.run(uniform(n, 2048, 2048));
  EXPECT_GT(rep.preemptions, 0);
  ASSERT_EQ(rep.requests.size(), static_cast<std::size_t>(n));
}

TEST(Scheduler, SingleRequestMatchesEngineOrderOfMagnitude) {
  ServingSimulator sim(engine_cfg(), SchedulerConfig{});
  const auto rep = sim.run(uniform(1, 512, 256));
  const SimEngine eng(engine_cfg());
  const auto m = eng.run(1, 512, 256);
  EXPECT_NEAR(rep.requests[0].e2e(), m.e2e_s, 0.5 * m.e2e_s);
  EXPECT_NEAR(rep.requests[0].ttft(), m.ttft_s, m.ttft_s);
}

TEST(Scheduler, ChunkedPrefillBudgetRespected) {
  // A tiny budget stretches TTFT: the 2048-token prompt takes ceil(2048/256)
  // prefill steps.
  SchedulerConfig small_chunk;
  small_chunk.prefill_tokens_per_step = 256;
  SchedulerConfig big_chunk;
  big_chunk.prefill_tokens_per_step = 4096;
  const auto trace = uniform(1, 2048, 8);
  const auto s = ServingSimulator(engine_cfg(), small_chunk).run(trace);
  const auto b = ServingSimulator(engine_cfg(), big_chunk).run(trace);
  EXPECT_GT(s.steps, b.steps);
}

TEST(Scheduler, RejectsImpossibleRequests) {
  ServingSimulator sim(engine_cfg(), SchedulerConfig{});
  const long long cap = sim.kv_token_capacity();
  std::vector<Request> too_big = {
      Request{static_cast<int>(cap), static_cast<int>(cap), 0}};
  EXPECT_THROW(sim.run(too_big), Error);
  EXPECT_THROW(sim.run({}), Error);
}

TEST(Scheduler, ConfigValidation) {
  SchedulerConfig bad;
  bad.max_batch = 0;
  EXPECT_THROW(ServingSimulator(engine_cfg(), bad), Error);
  bad = SchedulerConfig{};
  bad.prefill_tokens_per_step = 0;
  EXPECT_THROW(ServingSimulator(engine_cfg(), bad), Error);
  bad = SchedulerConfig{};
  bad.arrival_rate_qps = -1.0;
  EXPECT_THROW(ServingSimulator(engine_cfg(), bad), Error);
}

TEST(Scheduler, HonorsExplicitArrivalStamps) {
  // Requests carrying arrival_s stamps bypass the deprecated
  // arrival_rate_qps Poisson shim entirely.
  auto trace = uniform(16, 256, 32);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    trace[i].arrival_s = 0.25 * static_cast<double>(i);
  }
  SchedulerConfig sc;
  sc.arrival_rate_qps = 1000.0;  // must be ignored when stamps are present
  ServingSimulator sim(engine_cfg(), sc);
  const auto rep = sim.run(trace);
  ASSERT_EQ(rep.requests.size(), 16u);
  for (std::size_t i = 0; i < rep.requests.size(); ++i) {
    EXPECT_DOUBLE_EQ(rep.requests[i].arrival_s,
                     0.25 * static_cast<double>(i));
    EXPECT_GT(rep.requests[i].first_token_s, rep.requests[i].arrival_s);
  }
  // The load is light, so service tracks the stamps: the last request
  // cannot start before it arrives at t = 3.75.
  EXPECT_GE(rep.makespan_s, 3.75);
}

TEST(Scheduler, WeightsTooBigRejected) {
  EngineConfig c;
  c.model = models::mixtral_8x7b();  // 93 GiB fp16 on one 80 GiB device
  c.cluster = hw::Cluster::h100_node(1);
  EXPECT_THROW(ServingSimulator(c, SchedulerConfig{}), Error);
}

}  // namespace
}  // namespace mib::engine
