#include "engine/disagg.h"

#include <gtest/gtest.h>

#include "core/scenario.h"
#include "models/zoo.h"

namespace mib::engine {
namespace {

EngineConfig base(const char* model = "OLMoE-1B-7B") {
  core::Scenario s;
  s.model = model;
  return s.engine_config();
}

TEST(Disagg, MetricsConsistent) {
  DisaggSimulator sim(base(), DisaggConfig{1, 1});
  const auto m = sim.run(16, 1024, 1024);
  EXPECT_GT(m.ttft_s, m.kv_transfer_s);
  EXPECT_GT(m.e2e_s, m.ttft_s);
  EXPECT_GT(m.throughput_tok_s, 0.0);
  EXPECT_NEAR(m.throughput_tok_s, 16.0 * 2048 / m.e2e_s, 1e-6);
  EXPECT_GT(m.colocated_throughput_tok_s, 0.0);
}

TEST(Disagg, KvTransferScalesWithPromptAndKvLayout) {
  DisaggSimulator sim(base("Qwen1.5-MoE-A2.7B"), DisaggConfig{1, 1});
  const auto short_p = sim.run(8, 256, 256);
  const auto long_p = sim.run(8, 2048, 256);
  EXPECT_NEAR(long_p.kv_transfer_s / short_p.kv_transfer_s, 8.0, 0.2);

  // MLA ships a compressed cache: far cheaper transfer per token.
  DisaggSimulator mla(base("DeepSeek-V2-Lite"), DisaggConfig{1, 1});
  const auto m = mla.run(8, 2048, 256);
  EXPECT_LT(m.kv_transfer_s, long_p.kv_transfer_s / 3.0);
}

TEST(Disagg, FasterLinkCutsTtft) {
  DisaggConfig ib{1, 1, hw::ib_ndr400()};
  DisaggConfig nv{1, 1, hw::nvlink4()};
  const auto slow = DisaggSimulator(base("Qwen1.5-MoE-A2.7B"), ib)
                        .run(32, 2048, 128);
  const auto fast = DisaggSimulator(base("Qwen1.5-MoE-A2.7B"), nv)
                        .run(32, 2048, 128);
  EXPECT_GT(slow.kv_transfer_s, fast.kv_transfer_s);
  EXPECT_GT(slow.ttft_s, fast.ttft_s);
}

TEST(Disagg, MorePrefillDevicesCutTtftOnly) {
  DisaggSimulator small(base(), DisaggConfig{1, 1});
  DisaggSimulator big(base(), DisaggConfig{4, 1});
  const auto a = small.run(32, 2048, 512);
  const auto b = big.run(32, 2048, 512);
  EXPECT_LT(b.ttft_s, a.ttft_s);
  EXPECT_NEAR(b.itl_s, a.itl_s, a.itl_s * 0.02);  // decode pool unchanged
}

TEST(Disagg, MoreDecodeDevicesCutItl) {
  DisaggSimulator small(base(), DisaggConfig{1, 1});
  DisaggSimulator big(base(), DisaggConfig{1, 4});
  const auto a = small.run(32, 1024, 1024);
  const auto b = big.run(32, 1024, 1024);
  EXPECT_LT(b.itl_s, a.itl_s);
}

TEST(Disagg, Validation) {
  EXPECT_THROW(DisaggSimulator(base(), DisaggConfig{0, 1}), Error);
  EXPECT_THROW(DisaggSimulator(base(), DisaggConfig{1, 0}), Error);
  DisaggConfig bad{1, 1, hw::LinkSpec{"none", 0.0, 0.0}};
  EXPECT_THROW(DisaggSimulator(base(), bad), Error);
}

}  // namespace
}  // namespace mib::engine
