#include "engine/layer_cost.h"

#include <gtest/gtest.h>

#include "models/params.h"
#include "models/zoo.h"

namespace mib::engine {
namespace {

LayerCostModel make(const models::ModelConfig& m, int devices = 1,
                    parallel::ParallelPlan plan = {}, CostConfig cost = {}) {
  if (plan.devices() == 1 && devices > 1) plan = parallel::tp_plan(devices);
  return LayerCostModel(m, hw::Cluster::h100_node(devices), plan, cost);
}

TEST(LayerCost, DecodeStepGrowsWithBatch) {
  const auto lc = make(models::olmoe_1b_7b());
  const double t1 = lc.decode_step(1, 1024).total();
  const double t64 = lc.decode_step(64, 1024).total();
  EXPECT_GT(t64, t1);
  // But far sublinear: batching amortizes weight reads.
  EXPECT_LT(t64, 32.0 * t1);
}

TEST(LayerCost, DecodeStepGrowsWithContext) {
  const auto lc = make(models::olmoe_1b_7b());
  EXPECT_GT(lc.decode_step(16, 8192).total(),
            lc.decode_step(16, 512).total());
}

TEST(LayerCost, PrefillScalesWithSequenceLength) {
  const auto lc = make(models::olmoe_1b_7b());
  const double t512 = lc.prefill(8, 512).total();
  const double t2048 = lc.prefill(8, 2048).total();
  EXPECT_GT(t2048, 3.0 * t512);
}

TEST(LayerCost, TensorParallelSpeedsUpPrefill) {
  const auto m = models::mixtral_8x7b();
  const double t1 =
      make(m, 1).prefill(16, 2048).total();
  const double t4 = make(m, 4).prefill(16, 2048).total();
  EXPECT_LT(t4, t1);
  EXPECT_GT(t4, t1 / 4.0);  // collectives cost something
}

TEST(LayerCost, FusedMoEFasterThanUnfused) {
  CostConfig fused;
  CostConfig unfused;
  unfused.fused_moe = false;
  const auto m = models::mixtral_8x7b();
  const double tf = make(m, 4, parallel::tp_plan(4), fused)
                        .decode_step(16, 2048)
                        .total();
  const double tu = make(m, 4, parallel::tp_plan(4), unfused)
                        .decode_step(16, 2048)
                        .total();
  EXPECT_LT(tf, tu);
}

TEST(LayerCost, FP8FasterThanFP16) {
  CostConfig fp8;
  fp8.weight_dtype = DType::kFP8E4M3;
  fp8.act_dtype = DType::kFP8E4M3;
  fp8.kv_dtype = DType::kFP8E4M3;
  const auto m = models::olmoe_1b_7b();
  const double t8 =
      make(m, 1, {}, fp8).decode_step(32, 2048).total();
  const double t16 = make(m, 1).decode_step(32, 2048).total();
  EXPECT_LT(t8, t16);
}

TEST(LayerCost, MoreActiveExpertsSlowDecode) {
  auto m = models::mixtral_8x7b();
  m.n_experts = 64;
  m.expert_ffn = 3584;
  m.top_k = 1;
  const double t1 = make(m, 4).decode_step(16, 2048).total();
  m.top_k = 8;
  const double t8 = make(m, 4).decode_step(16, 2048).total();
  EXPECT_GT(t8, t1);
}

TEST(LayerCost, RoutingSkewSlowsEpPrefill) {
  // With a saturating workload (prefill) expert coverage is full either
  // way, isolating the EP slowest-device penalty: a skewed router piles
  // most tokens on one device's experts.
  CostConfig skewed;
  skewed.routing.zipf_s = 1.2;
  CostConfig balanced;
  const auto m = models::olmoe_1b_7b();
  const auto ep = parallel::tp_ep_plan(4);
  const double t_bal = make(m, 4, ep, balanced).prefill(32, 1024).total();
  const double t_skew = make(m, 4, ep, skewed).prefill(32, 1024).total();
  EXPECT_GT(t_skew, 1.2 * t_bal);
  // Without EP the skew penalty disappears (experts are tensor-sliced, so
  // every device sees every token regardless of routing).
  const auto tp = parallel::tp_plan(4);
  const double tp_bal = make(m, 4, tp, balanced).prefill(32, 1024).total();
  const double tp_skew = make(m, 4, tp, skewed).prefill(32, 1024).total();
  EXPECT_NEAR(tp_skew, tp_bal, tp_bal * 0.05);
}

TEST(LayerCost, PipelineDecodeGetsNoSpeedup) {
  const auto m = models::olmoe_1b_7b();
  const double t1 = make(m, 1).decode_step(8, 1024).total();
  const double t_pp =
      make(m, 4, parallel::pp_plan(4)).decode_step(8, 1024).total();
  EXPECT_GE(t_pp, t1 * 0.99);  // boundary transfers make it >=
}

TEST(LayerCost, PipelinePrefillGetsSomeSpeedup) {
  const auto m = models::olmoe_1b_7b();
  const double t1 = make(m, 1).prefill(16, 2048).total();
  const double t_pp =
      make(m, 4, parallel::pp_plan(4)).prefill(16, 2048).total();
  EXPECT_LT(t_pp, t1);
  EXPECT_GT(t_pp, t1 / 4.0);  // bubble keeps it off linear
}

TEST(LayerCost, BreakdownComponentsNonNegativeAndSum) {
  const auto lc = make(models::deepseek_v2_lite());
  const auto b = lc.decode_step(16, 2048);
  EXPECT_GE(b.attention, 0.0);
  EXPECT_GE(b.ffn, 0.0);
  EXPECT_GE(b.router, 0.0);
  EXPECT_GE(b.comm, 0.0);
  EXPECT_GE(b.head, 0.0);
  EXPECT_GE(b.overhead, 0.0);
  EXPECT_NEAR(b.total(),
              b.attention + b.ffn + b.router + b.comm + b.head + b.vision +
                  b.overhead + b.bubble,
              1e-12);
  EXPECT_GT(b.ffn, 0.0);
  EXPECT_GT(b.router, 0.0);
}

TEST(LayerCost, DenseModelHasNoRouterCost) {
  const auto lc = make(models::qwen3_1_7b());
  EXPECT_DOUBLE_EQ(lc.decode_step(8, 1024).router, 0.0);
}

TEST(LayerCost, VisionTokensExtendPrompt) {
  const auto m = models::deepseek_vl2_tiny();
  const auto lc = make(m);
  EXPECT_EQ(lc.effective_prompt_tokens(128, 0), 128);
  EXPECT_EQ(lc.effective_prompt_tokens(128, 1),
            128 + m.vision->patch_tokens);
  EXPECT_EQ(lc.effective_prompt_tokens(128, 2),
            128 + 2 * m.vision->patch_tokens);
}

TEST(LayerCost, VisionEncoderCostsTime) {
  const auto lc = make(models::deepseek_vl2_tiny());
  EXPECT_DOUBLE_EQ(lc.vision_encode_time(0), 0.0);
  const double one = lc.vision_encode_time(1);
  EXPECT_GT(one, 0.0);
  EXPECT_GT(lc.vision_encode_time(8), 4.0 * one);
  const auto with_img = lc.prefill(4, 256, 1);
  const auto without = lc.prefill(4, 256, 0);
  EXPECT_GT(with_img.vision, 0.0);
  EXPECT_GT(with_img.total(), without.total());
}

TEST(LayerCost, TextModelRejectsImages) {
  const auto lc = make(models::olmoe_1b_7b());
  EXPECT_THROW(lc.effective_prompt_tokens(128, 1), Error);
  EXPECT_THROW(lc.vision_encode_time(1), Error);
}

TEST(LayerCost, SwEfficiencySlowsKernelsNotComm) {
  auto fast = models::mixtral_8x7b();
  auto slow = fast;
  slow.sw_efficiency = 0.5;
  const auto bf = make(fast, 4).decode_step(16, 1024);
  const auto bs = make(slow, 4).decode_step(16, 1024);
  EXPECT_NEAR(bs.ffn, bf.ffn * 2.0, bf.ffn * 0.01);
  EXPECT_DOUBLE_EQ(bs.comm, bf.comm);
}

TEST(LayerCost, PlanLargerThanClusterRejected) {
  EXPECT_THROW(LayerCostModel(models::olmoe_1b_7b(),
                              hw::Cluster::h100_node(2),
                              parallel::tp_plan(4), CostConfig{}),
               Error);
}

TEST(LayerCost, CS3DecodeBeatsH100) {
  const auto m = models::llama4_scout_17b_16e();
  CostConfig c;
  const LayerCostModel h100(m, hw::Cluster::h100_node(8),
                            parallel::tp_plan(8), c);
  const LayerCostModel cs3(m, hw::Cluster::cs3_system(),
                           parallel::ParallelPlan{}, c);
  EXPECT_LT(cs3.decode_step(1, 4096).total(),
            h100.decode_step(1, 4096).total());
}

// Parameterized: decode step monotone in context for every zoo LLM.
class DecodeMonotoneCtx
    : public ::testing::TestWithParam<const char*> {};

TEST_P(DecodeMonotoneCtx, StepTimeNondecreasingInCtx) {
  const auto m = models::model_by_name(GetParam());
  const int devices =
      models::weight_bytes(m, DType::kFP16) > 70e9 ? 4 : 1;
  const auto lc = make(m, devices);
  double prev = 0.0;
  for (double ctx : {256.0, 1024.0, 4096.0, 16384.0}) {
    const double t = lc.decode_step(8, ctx).total();
    EXPECT_GE(t, prev) << "ctx " << ctx;
    prev = t;
  }
}

INSTANTIATE_TEST_SUITE_P(ZooLLMs, DecodeMonotoneCtx,
                         ::testing::Values("Mixtral-8x7B",
                                           "Qwen1.5-MoE-A2.7B",
                                           "Qwen3-30B-A3B",
                                           "DeepSeek-V2-Lite", "Phi-3.5-MoE",
                                           "OLMoE-1B-7B", "Qwen3-8B"));

}  // namespace
}  // namespace mib::engine
