#include <gtest/gtest.h>

#include <numeric>

#include "common/error.h"
#include "models/zoo.h"
#include "parallel/expert_placement.h"
#include "workload/activation_study.h"
#include "workload/generator.h"

namespace mib::workload {
namespace {

TEST(Generator, TraceRespectsBounds) {
  TraceConfig cfg;
  cfg.n_requests = 200;
  cfg.input = {32, 1024, 1.0};
  cfg.output = {16, 256, 0.5};
  cfg.images_per_request = 1;
  const auto trace = generate_trace(cfg);
  ASSERT_EQ(trace.size(), 200u);
  for (const auto& r : trace) {
    EXPECT_GE(r.input_tokens, 32);
    EXPECT_LE(r.input_tokens, 1024);
    EXPECT_GE(r.output_tokens, 16);
    EXPECT_LE(r.output_tokens, 256);
    EXPECT_EQ(r.n_images, 1);
  }
}

TEST(Generator, DeterministicBySeed) {
  TraceConfig cfg;
  cfg.n_requests = 50;
  const auto a = generate_trace(cfg);
  const auto b = generate_trace(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].input_tokens, b[i].input_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  cfg.seed = 43;
  const auto c = generate_trace(cfg);
  int diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff += a[i].input_tokens != c[i].input_tokens;
  }
  EXPECT_GT(diff, 0);
}

TEST(Generator, SkewBiasesShort) {
  TraceConfig skew;
  skew.n_requests = 2000;
  skew.input = {16, 2048, 2.0};
  TraceConfig flat = skew;
  flat.input.skew = 0.0;
  auto mean_in = [](const std::vector<engine::Request>& t) {
    double s = 0;
    for (const auto& r : t) s += r.input_tokens;
    return s / t.size();
  };
  EXPECT_LT(mean_in(generate_trace(skew)), mean_in(generate_trace(flat)));
}

TEST(Generator, FixedLengthDegenerate) {
  TraceConfig cfg;
  cfg.n_requests = 10;
  cfg.input = {128, 128, 1.0};
  cfg.output = {128, 128, 1.0};
  for (const auto& r : generate_trace(cfg)) {
    EXPECT_EQ(r.input_tokens, 128);
    EXPECT_EQ(r.output_tokens, 128);
  }
}

TEST(Generator, PaperGrids) {
  EXPECT_EQ(paper_batch_sizes(), (std::vector<int>{1, 16, 32, 64}));
  EXPECT_EQ(paper_sequence_lengths(),
            (std::vector<int>{128, 256, 512, 1024, 2048}));
  EXPECT_EQ(extended_batch_sizes().back(), 128);
}

TEST(Generator, UniformBatchHelper) {
  const auto b = engine::make_uniform_batch(4, 128, 64, 1);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0].input_tokens, 128);
  EXPECT_EQ(b[3].n_images, 1);
  EXPECT_THROW(engine::make_uniform_batch(0, 1, 1), Error);
  EXPECT_THROW(engine::make_uniform_batch(1, 0, 1), Error);
}

TEST(ActivationStudy, CountsAddUp) {
  ActivationStudy study(models::olmoe_1b_7b(), {});
  study.run(500);
  const auto& hm = study.heatmap();
  ASSERT_EQ(hm.size(), 16u);  // layers
  ASSERT_EQ(hm[0].size(), 64u);
  for (const auto& layer : hm) {
    const auto total = std::accumulate(layer.begin(), layer.end(),
                                       std::uint64_t{0});
    EXPECT_EQ(total, 500u * 8u);  // tokens * top_k
  }
}

TEST(ActivationStudy, BalancedRouterIsNearUniform) {
  ActivationStudy study(models::deepseek_vl2_tiny(), {});
  study.run(3000);
  EXPECT_LT(study.mean_cv(), 0.6);
  EXPECT_LT(study.mean_imbalance(), 2.5);
}

TEST(ActivationStudy, SkewedRouterConcentrates) {
  ActivationStudyConfig skew;
  skew.router_skew = 4.0;
  ActivationStudy balanced(models::molmoe_1b(), {});
  ActivationStudy skewed(models::molmoe_1b(), skew);
  balanced.run(3000);
  skewed.run(3000);
  EXPECT_GT(skewed.mean_cv(), 2.0 * balanced.mean_cv());
  EXPECT_GT(skewed.mean_imbalance(), balanced.mean_imbalance());
  EXPECT_GT(skewed.peak(), balanced.peak());
}

TEST(ActivationStudy, PeakBoundedByTotal) {
  ActivationStudy study(models::olmoe_1b_7b(), {});
  study.run(100);
  EXPECT_LE(study.peak(), 100u * 8u);
  EXPECT_GT(study.peak(), 0u);
}

TEST(ActivationStudy, RejectsDenseModels) {
  EXPECT_THROW(ActivationStudy(models::qwen3_1_7b(), {}), Error);
}

TEST(ActivationStudy, DeterministicBySeed) {
  ActivationStudy a(models::olmoe_1b_7b(), {});
  ActivationStudy b(models::olmoe_1b_7b(), {});
  a.run(200);
  b.run(200);
  EXPECT_EQ(a.heatmap(), b.heatmap());
}

// The functional router's empirical coverage should match the analytic
// expected_distinct_experts formula used by the cost model.
TEST(ActivationStudy, EmpiricalCoverageMatchesAnalytic) {
  ActivationStudy study(models::olmoe_1b_7b(), {});
  const int tokens = 40;  // few tokens: coverage well below E
  study.run(tokens);
  // Count distinct experts hit in layer 0.
  int distinct = 0;
  for (auto c : study.heatmap()[0]) distinct += c > 0;
  const double expected = parallel::expected_distinct_experts(
      64, tokens * 8.0, parallel::RoutingModel{});
  EXPECT_NEAR(distinct, expected, 10.0);
}

}  // namespace
}  // namespace mib::workload
