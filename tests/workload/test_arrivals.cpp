#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace mib::workload {
namespace {

TEST(Arrivals, PoissonIsNonDecreasingAndStartsAtStart) {
  ArrivalConfig cfg;
  cfg.rate_qps = 10.0;
  cfg.start_s = 1.5;
  const auto ts = generate_arrivals(cfg, 100);
  ASSERT_EQ(ts.size(), 100u);
  EXPECT_DOUBLE_EQ(ts.front(), 1.5);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GE(ts[i], ts[i - 1]);
}

TEST(Arrivals, DeterministicForFixedSeed) {
  ArrivalConfig cfg;
  cfg.rate_qps = 25.0;
  cfg.seed = 7;
  EXPECT_EQ(generate_arrivals(cfg, 64), generate_arrivals(cfg, 64));
  cfg.seed = 8;
  EXPECT_NE(generate_arrivals(cfg, 64), [&] {
    ArrivalConfig c2 = cfg;
    c2.seed = 7;
    return generate_arrivals(c2, 64);
  }());
}

TEST(Arrivals, MeanGapTracksRate) {
  ArrivalConfig cfg;
  cfg.rate_qps = 50.0;
  cfg.seed = 3;
  const int n = 4000;
  const auto ts = generate_arrivals(cfg, n);
  const double mean_gap = ts.back() / (n - 1);
  EXPECT_NEAR(mean_gap, 1.0 / 50.0, 0.25 / 50.0);  // within 25%
}

TEST(Arrivals, DiurnalModulatesButStaysOrdered) {
  ArrivalConfig cfg;
  cfg.rate_qps = 20.0;
  cfg.process = ArrivalConfig::Process::kDiurnal;
  cfg.diurnal_period_s = 10.0;
  cfg.diurnal_amplitude = 0.8;
  const auto ts = generate_arrivals(cfg, 256);
  for (std::size_t i = 1; i < ts.size(); ++i) EXPECT_GE(ts[i], ts[i - 1]);
  // Modulation changes the sample path vs the homogeneous process.
  ArrivalConfig flat = cfg;
  flat.process = ArrivalConfig::Process::kPoisson;
  EXPECT_NE(ts, generate_arrivals(flat, 256));
}

TEST(Arrivals, StampsTraceInOrder) {
  TraceConfig tc;
  tc.n_requests = 32;
  auto trace = generate_trace(tc);
  ArrivalConfig cfg;
  cfg.rate_qps = 40.0;
  stamp_arrivals(cfg, trace);
  EXPECT_DOUBLE_EQ(trace.front().arrival_s, 0.0);
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival_s, trace[i - 1].arrival_s);
  }
  for (const auto& r : trace) r.validate();
}

TEST(Arrivals, ConfigValidation) {
  ArrivalConfig cfg;
  cfg.rate_qps = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.rate_qps = 1.0;
  cfg.process = ArrivalConfig::Process::kDiurnal;
  cfg.diurnal_amplitude = 1.5;
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace mib::workload
