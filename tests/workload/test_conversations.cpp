#include <gtest/gtest.h>

#include "common/error.h"
#include "workload/generator.h"

namespace mib::workload {
namespace {

TEST(Conversations, ShapeAndGrowth) {
  ConversationConfig cfg;
  cfg.n_conversations = 4;
  cfg.turns_per_conversation = 3;
  cfg.system_prompt_tokens = 128;
  const auto turns = generate_conversations(cfg);
  ASSERT_EQ(turns.size(), 12u);
  for (const auto& t : turns) {
    // Every turn's prompt contains at least the shared prefix.
    EXPECT_GE(t.request.input_tokens, t.shared_prefix_tokens);
    EXPECT_GE(t.shared_prefix_tokens, 128);
    EXPECT_GE(t.request.output_tokens, 16);
  }
  // Within a conversation, history grows monotonically.
  for (std::size_t i = 1; i < turns.size(); ++i) {
    if (turns[i].conversation == turns[i - 1].conversation) {
      EXPECT_GT(turns[i].shared_prefix_tokens,
                turns[i - 1].shared_prefix_tokens);
      EXPECT_EQ(turns[i].turn, turns[i - 1].turn + 1);
    }
  }
}

TEST(Conversations, HistoryAccountingExact) {
  // shared_prefix(turn n+1) = input(turn n) + output(turn n).
  ConversationConfig cfg;
  cfg.n_conversations = 1;
  cfg.turns_per_conversation = 4;
  const auto turns = generate_conversations(cfg);
  for (std::size_t i = 1; i < turns.size(); ++i) {
    EXPECT_EQ(turns[i].shared_prefix_tokens,
              turns[i - 1].request.input_tokens +
                  turns[i - 1].request.output_tokens);
  }
}

TEST(Conversations, FirstTurnSharesOnlySystemPrompt) {
  ConversationConfig cfg;
  cfg.system_prompt_tokens = 777;
  const auto turns = generate_conversations(cfg);
  for (const auto& t : turns) {
    if (t.turn == 0) {
      EXPECT_EQ(t.shared_prefix_tokens, 777);
    }
  }
}

TEST(Conversations, DeterministicBySeed) {
  ConversationConfig cfg;
  const auto a = generate_conversations(cfg);
  const auto b = generate_conversations(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request.input_tokens, b[i].request.input_tokens);
  }
}

TEST(Conversations, SharedFractionIsLarge) {
  // The prefix-caching motivation: most prompt tokens are reusable.
  ConversationConfig cfg;
  cfg.turns_per_conversation = 6;
  const auto turns = generate_conversations(cfg);
  double shared = 0.0, total = 0.0;
  for (const auto& t : turns) {
    shared += t.shared_prefix_tokens;
    total += t.request.input_tokens;
  }
  EXPECT_GT(shared / total, 0.7);
}

TEST(Conversations, Validation) {
  ConversationConfig bad;
  bad.n_conversations = 0;
  EXPECT_THROW(generate_conversations(bad), Error);
  bad = ConversationConfig{};
  bad.system_prompt_tokens = 0;
  EXPECT_THROW(generate_conversations(bad), Error);
}

}  // namespace
}  // namespace mib::workload
