#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "common/error.h"
#include "core/experiments.h"
#include "core/report.h"
#include "core/scenario.h"

namespace mib::core {
namespace {

TEST(Scenario, DefaultsRunEndToEnd) {
  Scenario s;
  const auto m = s.run();
  EXPECT_GT(m.throughput_tok_s, 0.0);
}

TEST(Scenario, FluentHelpersCompose) {
  Scenario s;
  const auto t = s.with_batch(16)
                     .with_lengths(256, 512)
                     .with_devices(2)
                     .with_dtype(DType::kFP8E4M3)
                     .with_fused(false);
  EXPECT_EQ(t.batch, 16);
  EXPECT_EQ(t.input_tokens, 256);
  EXPECT_EQ(t.output_tokens, 512);
  EXPECT_EQ(t.n_devices, 2);
  EXPECT_EQ(t.weight_dtype, DType::kFP8E4M3);
  EXPECT_FALSE(t.fused_moe);
  // Original untouched (value semantics).
  EXPECT_EQ(s.batch, 1);
}

TEST(Scenario, DefaultPlanIsTpOverNode) {
  Scenario s;
  s.model = "Mixtral-8x7B";
  s.n_devices = 4;
  const auto cfg = s.engine_config();
  EXPECT_EQ(cfg.plan.tp, 4);
  EXPECT_EQ(cfg.plan.pp, 1);
}

TEST(Scenario, ExplicitPlanWins) {
  Scenario s;
  s.model = "OLMoE-1B-7B";
  s.n_devices = 4;
  s.plan = parallel::pp_plan(4);
  EXPECT_EQ(s.engine_config().plan.pp, 4);
}

TEST(Scenario, ModelOverrideUsed) {
  Scenario s;
  auto m = models::olmoe_1b_7b();
  m.top_k = 1;
  const auto t = s.with_model(m);
  EXPECT_EQ(t.resolve_model().top_k, 1);
  EXPECT_EQ(s.resolve_model().name, "OLMoE-1B-7B");
}

TEST(Scenario, DeviceSelection) {
  Scenario s;
  s.device = "cs3";
  s.model = "OLMoE-1B-7B";
  EXPECT_EQ(s.engine_config().cluster.device().name, "Cerebras-CS3");
  s.device = "a100";
  EXPECT_EQ(s.engine_config().cluster.device().name, "A100-SXM4-80GB");
}

TEST(Scenario, UnknownModelThrows) {
  Scenario s;
  s.model = "not-a-model";
  EXPECT_THROW(s.run(), ConfigError);
}

TEST(Experiments, RegistryCoversEveryPaperFigure) {
  std::set<std::string> ids;
  for (const auto& e : experiments()) ids.insert(e.id);
  for (const char* want :
       {"table1", "fig01", "fig03", "fig04", "fig05", "fig06", "fig07",
        "fig08", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14",
        "fig15", "fig16", "fig17", "fig18"}) {
    EXPECT_TRUE(ids.count(want)) << want;
  }
}

TEST(Experiments, IdsUniqueAndFieldsNonEmpty) {
  std::set<std::string> ids;
  for (const auto& e : experiments()) {
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate " << e.id;
    EXPECT_FALSE(e.title.empty());
    EXPECT_FALSE(e.bench_target.empty());
  }
}

TEST(Experiments, LookupWorks) {
  EXPECT_EQ(experiment("fig12").bench_target, "fig12_specdec");
  EXPECT_THROW(experiment("fig99"), ConfigError);
}

TEST(Report, BannerMentionsExperiment) {
  std::ostringstream oss;
  print_banner(oss, "fig10");
  EXPECT_NE(oss.str().find("fig10"), std::string::npos);
  EXPECT_NE(oss.str().find("FP16"), std::string::npos);
}

TEST(Report, MetricCellFormatsValue) {
  Scenario s;
  const auto cell = metric_cell([&] { return s.run(); }, throughput_of, 1);
  EXPECT_NE(cell, "OOM");
  EXPECT_NE(cell.find('.'), std::string::npos);
}

TEST(Report, MetricCellCatchesOom) {
  Scenario s;
  s.model = "Mixtral-8x7B";
  s.n_devices = 1;  // 93 GiB of fp16 weights: guaranteed OOM
  const auto cell = metric_cell([&] { return s.run(); }, throughput_of);
  EXPECT_EQ(cell, "OOM");
}

TEST(Report, CsvExportHonorsEnvVar) {
  Table t;
  t.set_headers({"a", "b"});
  t.new_row().cell("1").cell("2");
  ::unsetenv("MIB_RESULTS_DIR");
  EXPECT_FALSE(maybe_export_csv(t, "unit_test_table"));
  ::setenv("MIB_RESULTS_DIR", "/tmp/mib_test_results", 1);
  EXPECT_TRUE(maybe_export_csv(t, "unit_test_table"));
  std::ifstream in("/tmp/mib_test_results/unit_test_table.csv");
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "1,2");
  ::unsetenv("MIB_RESULTS_DIR");
}

TEST(Report, Selectors) {
  engine::RunMetrics m;
  m.throughput_tok_s = 5.0;
  m.ttft_s = 0.25;
  m.itl_s = 0.001;
  m.e2e_s = 2.0;
  m.samples_per_s = 3.0;
  EXPECT_DOUBLE_EQ(throughput_of(m), 5.0);
  EXPECT_DOUBLE_EQ(ttft_ms_of(m), 250.0);
  EXPECT_DOUBLE_EQ(itl_ms_of(m), 1.0);
  EXPECT_DOUBLE_EQ(e2e_s_of(m), 2.0);
  EXPECT_DOUBLE_EQ(samples_per_s_of(m), 3.0);
}

}  // namespace
}  // namespace mib::core
