#include "specdec/specdec.h"

#include <gtest/gtest.h>

#include <cmath>

#include "models/zoo.h"

namespace mib::specdec {
namespace {

engine::EngineConfig ecfg(const models::ModelConfig& m) {
  engine::EngineConfig c;
  c.model = m;
  c.cluster = hw::Cluster::h100_node(1);
  // fp8 weights: target + draft + both KV caches share one 80 GB device.
  c.cost.weight_dtype = DType::kFP8E4M3;
  return c;
}

SpecDecConfig scfg(const models::ModelConfig& draft, int k = 4) {
  SpecDecConfig c;
  c.target = ecfg(models::qwen3_30b_a3b());
  c.draft = ecfg(draft);
  c.draft_tokens = k;
  return c;
}

TEST(Acceptance, ExpectedTokensFormula) {
  EXPECT_DOUBLE_EQ(expected_tokens_per_cycle(0.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(expected_tokens_per_cycle(0.0, 4), 1.0);
  // alpha=0.5, k=1: 1 + 0.5 = 1.5.
  EXPECT_DOUBLE_EQ(expected_tokens_per_cycle(0.5, 1), 1.5);
  // Geometric sum: (1 - a^(k+1)) / (1 - a).
  EXPECT_NEAR(expected_tokens_per_cycle(0.8, 3),
              (1.0 - std::pow(0.8, 4)) / 0.2, 1e-12);
}

TEST(Acceptance, MonotoneInAlphaAndK) {
  EXPECT_GT(expected_tokens_per_cycle(0.8, 4),
            expected_tokens_per_cycle(0.5, 4));
  EXPECT_GT(expected_tokens_per_cycle(0.7, 8),
            expected_tokens_per_cycle(0.7, 2));
  // Saturates at 1/(1-alpha).
  EXPECT_LT(expected_tokens_per_cycle(0.7, 100), 1.0 / 0.3 + 1e-9);
}

TEST(Acceptance, InvalidArgs) {
  EXPECT_THROW(expected_tokens_per_cycle(1.0, 2), Error);
  EXPECT_THROW(expected_tokens_per_cycle(-0.1, 2), Error);
  EXPECT_THROW(expected_tokens_per_cycle(0.5, -1), Error);
}

TEST(Acceptance, CalibratedTableGrowsWithDraftSize) {
  const auto target = models::qwen3_30b_a3b();
  const double a06 = default_acceptance(models::qwen3_0_6b(), target);
  const double a17 = default_acceptance(models::qwen3_1_7b(), target);
  const double a4 = default_acceptance(models::qwen3_4b(), target);
  const double a8 = default_acceptance(models::qwen3_8b(), target);
  EXPECT_LT(a06, a17);
  EXPECT_LT(a17, a4);
  EXPECT_LT(a4, a8);
  EXPECT_GT(a06, 0.3);
  EXPECT_LT(a8, 0.9);
}

TEST(Acceptance, VocabMismatchRejected) {
  EXPECT_THROW(
      default_acceptance(models::olmoe_1b_7b(), models::qwen3_30b_a3b()),
      Error);
}

TEST(Acceptance, SizeFallbackMonotone) {
  EXPECT_LT(acceptance_from_size(0.5e9), acceptance_from_size(4e9));
  EXPECT_GE(acceptance_from_size(1.0), 0.30);
  EXPECT_LE(acceptance_from_size(1e12), 0.90);
}

TEST(SpecDec, SpeedsUpDecoding) {
  // At batch 16 the target's expert coverage is saturated, so verification
  // amortizes the weight read and speculation wins. (At batch 1 a sparse
  // MoE target reads so few experts per step that batch-expanded
  // verification erases the gain — a real MoE-specific effect.)
  // With fp8 weights the amortization margin narrows (weights are cheap,
  // so the draft's own cost weighs more) — the win is real but modest.
  const SpecDecSimulator sim(scfg(models::qwen3_1_7b(), 4));
  const auto m = sim.run(32, 512, 512);
  EXPECT_GT(m.speedup_vs_plain, 1.05);
  EXPECT_GT(m.tokens_per_cycle, 1.5);
  EXPECT_GT(m.decode_tok_s, 0.0);
}

TEST(SpecDec, ZeroDraftTokensIsPlainDecoding) {
  const SpecDecSimulator sim(scfg(models::qwen3_1_7b(), 0));
  const auto m = sim.run(1, 512, 512);
  EXPECT_DOUBLE_EQ(m.tokens_per_cycle, 1.0);
  EXPECT_NEAR(m.speedup_vs_plain, 1.0, 1e-9);
}

TEST(SpecDec, MediumDraftBeatsExtremes) {
  // The paper's Fig. 12 headline: Qwen3-1.7B is the best draft.
  auto thr = [&](const models::ModelConfig& d) {
    return SpecDecSimulator(scfg(d, 3)).run(8, 1024, 1024).throughput_tok_s;
  };
  const double t06 = thr(models::qwen3_0_6b());
  const double t17 = thr(models::qwen3_1_7b());
  const double t8 = thr(models::qwen3_8b());
  EXPECT_GT(t17, t06);
  EXPECT_GT(t17, t8);
}

TEST(SpecDec, ThroughputDropsWithInputLength) {
  const SpecDecSimulator sim(scfg(models::qwen3_1_7b(), 3));
  double prev = 1e18;
  for (int len : {128, 512, 2048}) {
    const double t = sim.run(8, len, len).throughput_tok_s;
    EXPECT_LT(t, prev) << len;
    prev = t;
  }
}

TEST(SpecDec, LargeDraftCountsHurtEventually) {
  auto thr = [&](int k) {
    return SpecDecSimulator(scfg(models::qwen3_1_7b(), k))
        .run(16, 1024, 1024)
        .throughput_tok_s;
  };
  // Deep speculation pays growing verification cost with saturating
  // acceptance: k=16 must be worse than the best small-k setting.
  const double best_small = std::max({thr(1), thr(2), thr(4)});
  EXPECT_LT(thr(16), best_small);
}

TEST(SpecDec, AcceptanceOverrideRespected) {
  auto c = scfg(models::qwen3_1_7b(), 4);
  c.acceptance = 0.9;
  const auto m = SpecDecSimulator(c).run(1, 256, 256);
  EXPECT_NEAR(m.alpha, 0.9, 1e-12);
  EXPECT_NEAR(m.tokens_per_cycle, (1 - std::pow(0.9, 5)) / 0.1, 1e-9);
}

TEST(SpecDec, VocabMismatchConfigRejected) {
  SpecDecConfig c;
  c.target = ecfg(models::qwen3_30b_a3b());
  c.draft = ecfg(models::olmoe_1b_7b());
  EXPECT_THROW(SpecDecSimulator{c}, Error);
}

TEST(SpecDec, TtftIncludesBothPrefills) {
  const SpecDecSimulator sim(scfg(models::qwen3_8b(), 4));
  const auto m = sim.run(1, 1024, 128);
  const engine::SimEngine target_only(ecfg(models::qwen3_30b_a3b()));
  EXPECT_GT(m.ttft_s, target_only.run(1, 1024, 1).ttft_s);
}

TEST(SpecDec, MemoryEnforcementRejectsOversizedPairs) {
  // fp16 target (61 GiB) + fp16 8B draft (16 GiB) exceed one 80 GiB H100.
  SpecDecConfig c;
  c.target = ecfg(models::qwen3_30b_a3b());
  c.target.cost.weight_dtype = DType::kFP16;
  c.draft = ecfg(models::qwen3_8b());
  c.draft.cost.weight_dtype = DType::kFP16;
  c.draft_tokens = 3;
  const SpecDecSimulator sim(c);
  EXPECT_THROW(sim.run(8, 1024, 1024), OutOfMemoryError);
  // Disabling the check restores the (unrealistic) run.
  c.enforce_memory = false;
  const SpecDecSimulator loose(c);
  EXPECT_GT(loose.run(8, 1024, 1024).throughput_tok_s, 0.0);
}

}  // namespace
}  // namespace mib::specdec
