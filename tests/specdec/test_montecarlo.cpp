// Monte-Carlo validation of the speculative-decoding acceptance model: the
// closed form E[k, alpha] = (1 - alpha^(k+1)) / (1 - alpha) must match
// empirical simulation of the accept/reject chain.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "specdec/acceptance.h"

namespace mib::specdec {
namespace {

/// Simulate one speculation cycle: k draft tokens accepted i.i.d. with
/// probability alpha; the first rejection is replaced by the target's
/// corrected token; full acceptance earns the bonus token.
int simulate_cycle(double alpha, int k, Rng& rng) {
  int accepted = 0;
  while (accepted < k && rng.bernoulli(alpha)) ++accepted;
  return accepted + 1;  // corrected token or bonus token
}

using AlphaK = std::tuple<double, int>;

class McAcceptance : public ::testing::TestWithParam<AlphaK> {};

TEST_P(McAcceptance, ClosedFormMatchesSimulation) {
  const auto [alpha, k] = GetParam();
  Rng rng(0xC0FFEE);
  const int trials = 200000;
  double total = 0.0;
  for (int t = 0; t < trials; ++t) {
    total += simulate_cycle(alpha, k, rng);
  }
  const double empirical = total / trials;
  const double analytic = expected_tokens_per_cycle(alpha, k);
  EXPECT_NEAR(empirical, analytic, 0.01 * analytic)
      << "alpha=" << alpha << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, McAcceptance,
    ::testing::Combine(::testing::Values(0.3, 0.55, 0.72, 0.9),
                       ::testing::Values(1, 2, 4, 8)),
    [](const ::testing::TestParamInfo<AlphaK>& param_info) {
      // Built via append rather than operator+ chains: GCC 12's -Wrestrict
      // false-fires on the temporary-reusing rvalue overloads (PR105651).
      std::string n = "a";
      n += std::to_string(static_cast<int>(std::get<0>(param_info.param) * 100));
      n += "_k";
      n += std::to_string(std::get<1>(param_info.param));
      return n;
    });

TEST(McAcceptance, CycleOutputBounds) {
  Rng rng(1);
  for (int t = 0; t < 1000; ++t) {
    const int out = simulate_cycle(0.7, 4, rng);
    EXPECT_GE(out, 1);
    EXPECT_LE(out, 5);  // k accepted + bonus
  }
}

TEST(McAcceptance, ZeroAlphaAlwaysOneToken) {
  Rng rng(2);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(simulate_cycle(0.0, 8, rng), 1);
  }
}

}  // namespace
}  // namespace mib::specdec
