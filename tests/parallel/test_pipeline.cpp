#include "parallel/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace mib::parallel {
namespace {

TEST(Pipeline, SingleStageIsIdentity) {
  EXPECT_DOUBLE_EQ(pipeline_fill_drain_time(10.0, 1, 4), 10.0);
}

TEST(Pipeline, SingleMicrobatchGetsNoSpeedup) {
  // (1 + p - 1) * T/p = T: with one microbatch the pipeline serializes.
  EXPECT_DOUBLE_EQ(pipeline_fill_drain_time(12.0, 4, 1), 12.0);
  EXPECT_DOUBLE_EQ(pipeline_fill_drain_time(12.0, 2, 1), 12.0);
}

TEST(Pipeline, ManyMicrobatchesApproachLinear) {
  const double total = 16.0;
  const int p = 4;
  const double t = pipeline_fill_drain_time(total, p, 64);
  EXPECT_NEAR(t, total / p, total / p * 0.06);
  EXPECT_GT(t, total / p);  // bubble never fully vanishes
}

TEST(Pipeline, ClassicFormula) {
  // m=4, p=4: (4+3) * T/(16).
  EXPECT_DOUBLE_EQ(pipeline_fill_drain_time(16.0, 4, 4), 7.0);
}

TEST(Pipeline, BubbleFraction) {
  EXPECT_DOUBLE_EQ(pipeline_bubble_fraction(4, 4), 0.75);
  EXPECT_DOUBLE_EQ(pipeline_bubble_fraction(1, 8), 0.0);
  EXPECT_DOUBLE_EQ(pipeline_bubble_fraction(8, 1), 7.0);
}

TEST(Pipeline, TransferTimeScalesWithCrossings) {
  const hw::Interconnect ic(hw::nvlink4());
  const double one = pipeline_transfer_time(1e6, 2, 1, ic);
  EXPECT_DOUBLE_EQ(pipeline_transfer_time(1e6, 2, 4, ic), 4.0 * one);
  EXPECT_NEAR(pipeline_transfer_time(1e6, 5, 1, ic), 4.0 * one, 1e-12);
  EXPECT_DOUBLE_EQ(pipeline_transfer_time(1e6, 1, 8, ic), 0.0);
}

TEST(Pipeline, ChooseMicrobatches) {
  EXPECT_EQ(choose_microbatches(64, 4), 8);   // 2 * pp
  EXPECT_EQ(choose_microbatches(3, 4), 3);    // can't split below a request
  EXPECT_EQ(choose_microbatches(1, 8), 1);
  EXPECT_EQ(choose_microbatches(100, 1), 2);
}

TEST(Pipeline, InvalidArgs) {
  EXPECT_THROW(pipeline_fill_drain_time(-1.0, 2, 2), Error);
  EXPECT_THROW(pipeline_fill_drain_time(1.0, 0, 2), Error);
  EXPECT_THROW(pipeline_bubble_fraction(0, 1), Error);
  EXPECT_THROW(choose_microbatches(0, 1), Error);
}

}  // namespace
}  // namespace mib::parallel
