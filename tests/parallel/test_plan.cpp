#include "parallel/plan.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "models/zoo.h"

namespace mib::parallel {
namespace {

TEST(Plan, Labels) {
  EXPECT_EQ(tp_plan(4).label(), "TP4");
  EXPECT_EQ(tp_plan(1).label(), "TP1");
  EXPECT_EQ(tp_ep_plan(4).label(), "TP4+EP");
  EXPECT_EQ(pp_plan(4).label(), "PP4");
  EXPECT_EQ(pp_ep_plan(4).label(), "TP2xPP2+EP");
}

TEST(Plan, DeviceCounts) {
  EXPECT_EQ(tp_plan(4).devices(), 4);
  EXPECT_EQ(pp_ep_plan(4).devices(), 4);
  EXPECT_EQ((ParallelPlan{2, 3, false}).devices(), 6);
}

TEST(Plan, SingleDeviceVariantsDegrade) {
  EXPECT_FALSE(tp_ep_plan(1).ep);
  EXPECT_EQ(pp_ep_plan(1).devices(), 1);
}

TEST(Plan, ValidatesHeadDivisibility) {
  const auto m = models::mixtral_8x7b();  // 32 heads
  tp_plan(4).validate(m);
  tp_plan(8).validate(m);
  EXPECT_THROW(tp_plan(3).validate(m), Error);
}

TEST(Plan, ValidatesExpertDivisibilityForEp) {
  const auto m = models::mixtral_8x7b();  // 8 experts
  tp_ep_plan(4).validate(m);
  EXPECT_THROW(tp_ep_plan(3).validate(m), Error);
  const auto qwen = models::qwen15_moe_a27b();  // 60 experts
  tp_ep_plan(4).validate(qwen);
  ParallelPlan bad{8, 1, true};  // 60 % 8 != 0
  EXPECT_THROW(bad.validate(qwen), Error);
}

TEST(Plan, EpRequiresMoE) {
  const auto dense = models::qwen3_1_7b();
  ParallelPlan p{2, 1, true};
  EXPECT_THROW(p.validate(dense), Error);
}

TEST(Plan, PpBoundedByLayers) {
  const auto m = models::olmoe_1b_7b();  // 16 layers
  pp_plan(16).validate(m);
  EXPECT_THROW(pp_plan(17).validate(m), Error);
}

TEST(Plan, ExpertsPerDevice) {
  const auto m = models::olmoe_1b_7b();  // 64 experts
  EXPECT_EQ(tp_plan(4).experts_per_device(m), 64);   // TP slices, all resident
  EXPECT_EQ(tp_ep_plan(4).experts_per_device(m), 16);
  EXPECT_EQ(tp_plan(1).experts_per_device(models::qwen3_1_7b()), 0);
}

TEST(Plan, InvalidDegreesRejected) {
  EXPECT_THROW(tp_plan(0), Error);
  EXPECT_THROW(pp_plan(-1), Error);
  ParallelPlan p{0, 1, false};
  EXPECT_THROW(p.validate(models::olmoe_1b_7b()), Error);
}

}  // namespace
}  // namespace mib::parallel
