#include "parallel/expert_placement.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"

namespace mib::parallel {
namespace {

TEST(ExpertProbabilities, UniformSumsToOne) {
  const auto p = expert_probabilities(64, RoutingModel{});
  EXPECT_EQ(p.size(), 64u);
  double total = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  for (double v : p) EXPECT_NEAR(v, 1.0 / 64.0, 1e-12);
}

TEST(ExpertProbabilities, ZipfIsSkewedAndNormalized) {
  const auto p = expert_probabilities(16, RoutingModel{1.2});
  EXPECT_NEAR(std::accumulate(p.begin(), p.end(), 0.0), 1.0, 1e-12);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_LT(p[i], p[i - 1]);
}

TEST(ExpectedDistinct, BasicProperties) {
  const RoutingModel uniform{};
  EXPECT_DOUBLE_EQ(expected_distinct_experts(8, 0.0, uniform), 0.0);
  // One draw hits exactly one expert.
  EXPECT_NEAR(expected_distinct_experts(8, 1.0, uniform), 1.0, 1e-9);
  // Coverage saturates at E.
  EXPECT_NEAR(expected_distinct_experts(8, 1e6, uniform), 8.0, 1e-6);
  // Monotone in draws.
  double prev = 0.0;
  for (double n : {1.0, 4.0, 16.0, 64.0, 256.0}) {
    const double d = expected_distinct_experts(64, n, uniform);
    EXPECT_GT(d, prev);
    prev = d;
  }
}

TEST(ExpectedDistinct, KnownClosedForm) {
  // E * (1 - (1-1/E)^n) for E=8, n=16: 8 * (1 - 0.875^16).
  const double expected = 8.0 * (1.0 - std::pow(0.875, 16.0));
  EXPECT_NEAR(expected_distinct_experts(8, 16.0, RoutingModel{}), expected,
              1e-9);
}

TEST(ExpectedDistinct, SkewReducesCoverage) {
  const double uniform = expected_distinct_experts(64, 128, RoutingModel{});
  const double skewed =
      expected_distinct_experts(64, 128, RoutingModel{1.5});
  EXPECT_LT(skewed, uniform);
}

TEST(MaxGroupLoad, SingleGroupIsBalanced) {
  EXPECT_DOUBLE_EQ(
      expected_max_group_load_factor(64, 512, 1, RoutingModel{}), 1.0);
}

TEST(MaxGroupLoad, FactorAtLeastOne) {
  for (int groups : {2, 4, 8}) {
    for (double n : {8.0, 64.0, 512.0}) {
      EXPECT_GE(expected_max_group_load_factor(64, n, groups,
                                               RoutingModel{}),
                1.0);
    }
  }
}

TEST(MaxGroupLoad, VanishesWithManyAssignments) {
  const double small =
      expected_max_group_load_factor(64, 1e8, 4, RoutingModel{});
  EXPECT_LT(small, 1.01);
  const double big =
      expected_max_group_load_factor(64, 64.0, 4, RoutingModel{});
  EXPECT_GT(big, small);
}

TEST(MaxGroupLoad, SkewConcentratesLoad) {
  const double bal =
      expected_max_group_load_factor(64, 256, 4, RoutingModel{});
  const double skew =
      expected_max_group_load_factor(64, 256, 4, RoutingModel{1.5});
  EXPECT_GT(skew, bal);
}

TEST(MaxGroupLoad, NeverExceedsAllAssignmentsOnOneDevice) {
  // factor <= groups (all load on one device).
  const double f =
      expected_max_group_load_factor(64, 4.0, 8, RoutingModel{3.0});
  EXPECT_LE(f, 8.0 + 1e-9);
}

TEST(MaxGroupShare, BoundedAndConsistent) {
  const RoutingModel r{0.8};
  const double f = expected_max_group_load_factor(64, 128, 4, r);
  const double s = expected_max_group_share(64, 128, 4, r);
  EXPECT_NEAR(s, f / 4.0, 1e-12);
  EXPECT_GE(s, 0.25);
  EXPECT_LE(s, 1.0);
}

TEST(MaxGroupLoad, InvalidArgs) {
  EXPECT_THROW(expected_max_group_load_factor(4, 16, 0, RoutingModel{}),
               Error);
  EXPECT_THROW(expected_max_group_load_factor(4, 16, 8, RoutingModel{}),
               Error);
  EXPECT_THROW(expert_probabilities(0, RoutingModel{}), Error);
  EXPECT_THROW(expert_probabilities(4, RoutingModel{-1.0}), Error);
  EXPECT_THROW(expected_distinct_experts(4, -1.0, RoutingModel{}), Error);
}

}  // namespace
}  // namespace mib::parallel
