#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "parallel/expert_placement.h"

namespace mib::parallel {
namespace {

TEST(Placement, ContiguousBlocks) {
  const auto p = contiguous_placement(8, 4);
  EXPECT_EQ(p, (std::vector<int>{0, 0, 1, 1, 2, 2, 3, 3}));
  const auto one = contiguous_placement(4, 1);
  for (int g : one) EXPECT_EQ(g, 0);
  EXPECT_THROW(contiguous_placement(2, 4), Error);
}

TEST(Placement, BalancedIsFeasibleAndCapacityBounded) {
  const auto probs = expert_probabilities(16, RoutingModel{1.5});
  const auto p = balanced_placement(probs, 4);
  ASSERT_EQ(p.size(), 16u);
  std::vector<int> count(4, 0);
  for (int g : p) {
    ASSERT_GE(g, 0);
    ASSERT_LT(g, 4);
    ++count[g];
  }
  // Capacity: ceil(16/4) = 4 experts per device (even weight footprint).
  for (int c : count) EXPECT_EQ(c, 4);
}

TEST(Placement, BalancedNeverWorseThanContiguousUnderSkew) {
  for (double skew : {0.3, 0.8, 1.2, 2.0}) {
    const auto probs = expert_probabilities(64, RoutingModel{skew});
    const double contig =
        placement_max_mass(probs, contiguous_placement(64, 4), 4);
    const double bal = placement_max_mass(probs, balanced_placement(probs, 4), 4);
    EXPECT_LE(bal, contig + 1e-12) << "skew " << skew;
    // And the gap is substantial at high skew.
    if (skew >= 1.2) {
      EXPECT_LT(bal, 0.7 * contig) << "skew " << skew;
    }
  }
}

TEST(Placement, UniformIsPerfectlyBalanced) {
  const auto probs = expert_probabilities(32, RoutingModel{});
  const double bal =
      placement_max_mass(probs, balanced_placement(probs, 4), 4);
  EXPECT_NEAR(bal, 0.25, 1e-12);
}

TEST(Placement, LptBoundHolds) {
  // LPT guarantee for makespan: max <= (4/3 - 1/(3g)) * OPT and OPT >= 1/g.
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> probs(24);
    double total = 0.0;
    for (auto& v : probs) {
      v = rng.uniform(0.01, 1.0);
      total += v;
    }
    for (auto& v : probs) v /= total;
    const int g = 4;
    const double bal = placement_max_mass(probs, balanced_placement(probs, g), g);
    const double biggest = *std::max_element(probs.begin(), probs.end());
    const double opt_lb = std::max(1.0 / g, biggest);
    EXPECT_LE(bal, (4.0 / 3.0) * opt_lb + 1e-9) << "trial " << trial;
  }
}

TEST(Placement, MaxLoadFactorForPlacementConsistent) {
  // For contiguous placement the generalized formula must agree with the
  // RoutingModel-based one.
  const RoutingModel r{1.0};
  const auto probs = expert_probabilities(64, r);
  const auto contig = contiguous_placement(64, 4);
  const double a =
      expected_max_load_factor_for_placement(probs, contig, 4, 4096);
  const double b = expected_max_group_load_factor(64, 4096, 4, r);
  EXPECT_NEAR(a, b, 1e-9);
}

TEST(Placement, BalancedPlacementLowersExpectedMaxLoad) {
  const auto probs = expert_probabilities(64, RoutingModel{1.2});
  const double contig = expected_max_load_factor_for_placement(
      probs, contiguous_placement(64, 4), 4, 8192);
  const double bal = expected_max_load_factor_for_placement(
      probs, balanced_placement(probs, 4), 4, 8192);
  EXPECT_LT(bal, contig);
  EXPECT_GE(bal, 1.0);
}

TEST(Placement, Validation) {
  EXPECT_THROW(balanced_placement({0.5, 0.5}, 4), Error);
  EXPECT_THROW(balanced_placement({0.5, -0.1, 0.6}, 2), Error);
  EXPECT_THROW(placement_max_mass({0.5, 0.5}, {0}, 2), Error);
  EXPECT_THROW(placement_max_mass({1.0}, {3}, 2), Error);
}

// Monte-Carlo validation: the Gaussian extreme-value approximation of the
// expected max device load must track empirical multinomial sampling.
TEST(Placement, AnalyticMatchesMonteCarlo) {
  Rng rng(11);
  for (double skew : {0.0, 1.0}) {
    const int E = 32, g = 4;
    const double n = 512.0;
    const auto probs = expert_probabilities(E, RoutingModel{skew});
    const auto placement = contiguous_placement(E, g);

    const int trials = 400;
    double emp = 0.0;
    for (int t = 0; t < trials; ++t) {
      std::vector<int> load(g, 0);
      for (int draw = 0; draw < static_cast<int>(n); ++draw) {
        const auto e = rng.categorical(probs);
        ++load[placement[e]];
      }
      emp += *std::max_element(load.begin(), load.end());
    }
    emp /= trials;
    const double emp_factor = emp / (n / g);
    const double analytic =
        expected_max_load_factor_for_placement(probs, placement, g, n);
    EXPECT_NEAR(analytic, emp_factor, 0.15 * emp_factor) << "skew " << skew;
  }
}

}  // namespace
}  // namespace mib::parallel
