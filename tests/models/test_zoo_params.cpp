// Validation of the zoo against published parameter counts — the paper's
// Table 1 (Model Size / Active Parameters columns) and the models' own
// technical reports. This is the ground truth anchoring the cost model.
#include <gtest/gtest.h>

#include <cctype>

#include "models/params.h"
#include "models/zoo.h"

namespace mib::models {
namespace {

struct PublishedCounts {
  const char* name;
  double total_b;   ///< published total parameters (billions)
  double active_b;  ///< published active parameters (billions)
  double tol;       ///< relative tolerance (VL2 family is calibrated)
};

class ZooParams : public ::testing::TestWithParam<PublishedCounts> {};

TEST_P(ZooParams, MatchesPublishedTotals) {
  const auto& p = GetParam();
  const auto m = model_by_name(p.name);
  EXPECT_NEAR(total_params(m) / 1e9, p.total_b, p.total_b * p.tol)
      << m.name << " total";
  EXPECT_NEAR(active_params(m) / 1e9, p.active_b, p.active_b * p.tol)
      << m.name << " active";
}

INSTANTIATE_TEST_SUITE_P(
    Table1, ZooParams,
    ::testing::Values(
        PublishedCounts{"Mixtral-8x7B", 46.7, 12.9, 0.03},
        PublishedCounts{"Qwen1.5-MoE-A2.7B", 14.3, 2.7, 0.03},
        PublishedCounts{"Qwen3-30B-A3B", 30.5, 3.3, 0.03},
        PublishedCounts{"DeepSeek-V2-Lite", 15.7, 2.4, 0.12},
        PublishedCounts{"Phi-3.5-MoE", 41.9, 6.6, 0.03},
        PublishedCounts{"OLMoE-1B-7B", 6.9, 1.3, 0.03},
        PublishedCounts{"DeepSeek-VL2-Tiny", 3.0, 1.0, 0.15},
        PublishedCounts{"DeepSeek-VL2-Small", 16.0, 2.8, 0.15},
        PublishedCounts{"DeepSeek-VL2", 27.0, 4.5, 0.10},
        PublishedCounts{"Llama-4-Scout-17B-16E", 109.0, 17.0, 0.03},
        PublishedCounts{"DeepSeek-V3", 671.0, 37.0, 0.03},
        PublishedCounts{"Kimi-K2", 1040.0, 32.0, 0.04},
        PublishedCounts{"Qwen3-0.6B", 0.6, 0.6, 0.05},
        PublishedCounts{"Qwen3-1.7B", 1.7, 1.7, 0.05},
        PublishedCounts{"Qwen3-4B", 4.0, 4.0, 0.05},
        PublishedCounts{"Qwen3-8B", 8.2, 8.2, 0.05}),
    [](const ::testing::TestParamInfo<PublishedCounts>& param_info) {
      std::string n = param_info.param.name;
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(Zoo, Table1HasNineModels) {
  EXPECT_EQ(table1_models().size(), 9u);
  EXPECT_EQ(llm_models().size(), 6u);
  EXPECT_EQ(vlm_models().size(), 3u);
}

TEST(Zoo, AllModelsValidate) {
  for (const auto& m : all_models()) {
    EXPECT_NO_THROW(m.validate()) << m.name;
  }
}

TEST(Zoo, NamesAreUnique) {
  const auto all = all_models();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].name, all[j].name);
    }
  }
}

TEST(Zoo, LookupIsCaseInsensitive) {
  EXPECT_EQ(model_by_name("mixtral-8x7b").name, "Mixtral-8x7B");
  EXPECT_EQ(model_by_name("OLMOE-1B-7B").name, "OLMoE-1B-7B");
  EXPECT_THROW(model_by_name("gpt-5"), ConfigError);
}

TEST(Zoo, Table1ArchitectureColumns) {
  // Spot checks against the paper's Table 1 (layers / experts / top-k).
  const auto mixtral = model_by_name("Mixtral-8x7B");
  EXPECT_EQ(mixtral.n_layers, 32);
  EXPECT_EQ(mixtral.n_experts, 8);
  EXPECT_EQ(mixtral.top_k, 2);
  EXPECT_EQ(mixtral.hidden, 4096);
  EXPECT_EQ(mixtral.expert_ffn, 14336);

  const auto qwen3 = model_by_name("Qwen3-30B-A3B");
  EXPECT_EQ(qwen3.n_layers, 48);
  EXPECT_EQ(qwen3.n_experts, 128);
  EXPECT_EQ(qwen3.top_k, 8);

  const auto olmoe = model_by_name("OLMoE-1B-7B");
  EXPECT_EQ(olmoe.n_layers, 16);
  EXPECT_EQ(olmoe.n_experts, 64);
  EXPECT_EQ(olmoe.top_k, 8);

  const auto dsl = model_by_name("DeepSeek-V2-Lite");
  EXPECT_EQ(dsl.n_layers, 27);
  EXPECT_EQ(dsl.n_experts, 64);
  EXPECT_EQ(dsl.top_k, 6);
  EXPECT_EQ(dsl.attention, AttentionKind::kMLA);
}

TEST(Zoo, VLMsHaveVisionTowers) {
  for (const auto& m : vlm_models()) {
    EXPECT_TRUE(m.vision.has_value()) << m.name;
    EXPECT_EQ(m.modality, Modality::kTextImage) << m.name;
    EXPECT_GT(m.vision->patch_tokens, 0) << m.name;
  }
}

TEST(Zoo, MolmoESharesOlmoeBackbone) {
  const auto molmoe = molmoe_1b();
  const auto olmoe = olmoe_1b_7b();
  EXPECT_EQ(molmoe.n_experts, olmoe.n_experts);
  EXPECT_EQ(molmoe.top_k, olmoe.top_k);
  EXPECT_EQ(molmoe.n_layers, olmoe.n_layers);
  EXPECT_TRUE(molmoe.vision.has_value());
}

TEST(Zoo, DraftModelsShareQwen3Vocab) {
  const auto target = qwen3_30b_a3b();
  for (const auto& d :
       {qwen3_0_6b(), qwen3_1_7b(), qwen3_4b(), qwen3_8b()}) {
    EXPECT_EQ(d.vocab, target.vocab) << d.name;
    EXPECT_FALSE(d.is_moe()) << d.name;
  }
}

TEST(Zoo, PhiHasReducedSoftwareEfficiency) {
  EXPECT_LT(phi35_moe().sw_efficiency, 1.0);
  EXPECT_DOUBLE_EQ(mixtral_8x7b().sw_efficiency, 1.0);
}

}  // namespace
}  // namespace mib::models
