#include "models/config.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "models/zoo.h"

namespace mib::models {
namespace {

ModelConfig tiny_moe() {
  ModelConfig c;
  c.name = "tiny";
  c.n_layers = 2;
  c.hidden = 64;
  c.vocab = 1000;
  c.attention = AttentionKind::kMHA;
  c.n_heads = 4;
  c.n_kv_heads = 4;
  c.head_dim = 16;
  c.n_experts = 4;
  c.top_k = 2;
  c.expert_ffn = 128;
  return c;
}

TEST(ModelConfig, ValidMoEPasses) { tiny_moe().validate(); }

TEST(ModelConfig, RejectsBadTopK) {
  auto c = tiny_moe();
  c.top_k = 5;
  EXPECT_THROW(c.validate(), Error);
  c.top_k = 0;
  EXPECT_THROW(c.validate(), Error);
}

TEST(ModelConfig, RejectsMHAWithFewerKvHeads) {
  auto c = tiny_moe();
  c.n_kv_heads = 2;  // MHA demands equality
  EXPECT_THROW(c.validate(), Error);
  c.attention = AttentionKind::kGQA;
  c.validate();  // GQA accepts it
}

TEST(ModelConfig, RejectsIndivisibleKvHeads) {
  auto c = tiny_moe();
  c.attention = AttentionKind::kGQA;
  c.n_kv_heads = 3;
  EXPECT_THROW(c.validate(), Error);
}

TEST(ModelConfig, MLARequiresRank) {
  auto c = tiny_moe();
  c.attention = AttentionKind::kMLA;
  EXPECT_THROW(c.validate(), Error);
  c.mla_kv_rank = 64;
  c.mla_rope_dim = 16;
  c.mla_qk_nope_dim = 16;
  c.validate();
}

TEST(ModelConfig, DenseModelRejectsRoutingFields) {
  ModelConfig c = tiny_moe();
  c.n_experts = 0;
  c.expert_ffn = 0;
  c.dense_ffn = 256;
  EXPECT_THROW(c.validate(), Error);  // top_k still set
  c.top_k = 0;
  c.validate();
}

TEST(ModelConfig, SharedExpertsNeedDim) {
  auto c = tiny_moe();
  c.n_shared_experts = 1;
  EXPECT_THROW(c.validate(), Error);
  c.shared_expert_ffn = 64;
  c.validate();
}

TEST(ModelConfig, DenseLeadLayersNeedDenseFfn) {
  auto c = tiny_moe();
  c.n_dense_layers = 1;
  EXPECT_THROW(c.validate(), Error);
  c.dense_ffn = 128;
  c.validate();
  EXPECT_EQ(c.moe_layers(), 1);
  EXPECT_EQ(c.dense_layers(), 1);
}

TEST(ModelConfig, ImageModalityNeedsVisionTower) {
  auto c = tiny_moe();
  c.modality = Modality::kTextImage;
  EXPECT_THROW(c.validate(), Error);
  c.vision = VisionTowerConfig{};
  c.validate();
}

TEST(ModelConfig, KvBytesGqa) {
  const auto c = mixtral_8x7b();
  // 2 * 8 kv heads * 128 dim * 2 bytes
  EXPECT_DOUBLE_EQ(c.kv_bytes_per_token_per_layer(DType::kFP16), 4096.0);
  EXPECT_DOUBLE_EQ(c.kv_bytes_per_token_per_layer(DType::kFP8E4M3), 2048.0);
}

TEST(ModelConfig, KvBytesMlaIsCompressed) {
  const auto c = deepseek_v2_lite();
  // (512 latent + 64 rope) * 2 bytes = 1152 — far below GQA-equivalent.
  EXPECT_DOUBLE_EQ(c.kv_bytes_per_token_per_layer(DType::kFP16), 1152.0);
  const double gqa_equiv = 2.0 * 16 * 128 * 2.0;
  EXPECT_LT(c.kv_bytes_per_token_per_layer(DType::kFP16), gqa_equiv / 2);
}

TEST(ModelConfig, ActiveExpertsIncludesShared) {
  EXPECT_EQ(deepseek_v2_lite().active_experts(), 8);  // 6 routed + 2 shared
  EXPECT_EQ(mixtral_8x7b().active_experts(), 2);
}

TEST(ModelConfig, SwEfficiencyBounds) {
  auto c = tiny_moe();
  c.sw_efficiency = 0.0;
  EXPECT_THROW(c.validate(), Error);
  c.sw_efficiency = 1.1;
  EXPECT_THROW(c.validate(), Error);
  c.sw_efficiency = 0.5;
  c.validate();
}

TEST(ModelConfig, Names) {
  EXPECT_EQ(attention_kind_name(AttentionKind::kMLA), "MLA");
  EXPECT_EQ(modality_name(Modality::kTextImage), "Text+Image");
}

}  // namespace
}  // namespace mib::models
