#include "models/params.h"

#include <gtest/gtest.h>

#include "models/zoo.h"

namespace mib::models {
namespace {

ModelConfig small() {
  ModelConfig c;
  c.name = "small";
  c.n_layers = 2;
  c.hidden = 8;
  c.vocab = 100;
  c.attention = AttentionKind::kGQA;
  c.n_heads = 4;
  c.n_kv_heads = 2;
  c.head_dim = 4;
  c.n_experts = 3;
  c.top_k = 1;
  c.expert_ffn = 16;
  return c;
}

TEST(Params, AttentionHandComputed) {
  // q: 8*4*4=128, k: 8*2*4=64, v: 64, o: 4*4*8=128 -> 384.
  EXPECT_DOUBLE_EQ(attention_params_per_layer(small()), 384.0);
}

TEST(Params, ExpertHandComputed) {
  // 3 matrices * 8 * 16 = 384.
  EXPECT_DOUBLE_EQ(expert_params(small()), 384.0);
}

TEST(Params, RouterHandComputed) {
  EXPECT_DOUBLE_EQ(router_params_per_layer(small()), 24.0);
}

TEST(Params, EmbeddingTiedVsUntied) {
  auto c = small();
  EXPECT_DOUBLE_EQ(embedding_params(c), 1600.0);
  c.tied_embeddings = true;
  EXPECT_DOUBLE_EQ(embedding_params(c), 800.0);
}

TEST(Params, TotalIsSumOfBreakdownPlusEmbedding) {
  const auto c = small();
  double layer_sum = 0.0;
  for (const auto& lb : layer_breakdown(c)) layer_sum += lb.total();
  EXPECT_DOUBLE_EQ(total_params(c), layer_sum + embedding_params(c));
}

TEST(Params, ActiveLessThanTotalForMoE) {
  for (const auto& m : table1_models()) {
    EXPECT_LT(active_params(m), total_params(m)) << m.name;
  }
}

TEST(Params, ActiveEqualsTotalForDense) {
  const auto d = qwen3_1_7b();
  EXPECT_DOUBLE_EQ(active_params(d), total_params(d));
}

TEST(Params, BreakdownMoELayersCarryRouter) {
  const auto bd = layer_breakdown(deepseek_v2_lite());
  EXPECT_FALSE(bd[0].is_moe_layer);  // first layer dense
  EXPECT_DOUBLE_EQ(bd[0].router, 0.0);
  EXPECT_TRUE(bd[1].is_moe_layer);
  EXPECT_GT(bd[1].router, 0.0);
  EXPECT_GT(bd[1].ffn_total, bd[1].ffn_active);
}

TEST(Params, MoELayerDominatesParameters) {
  // The paper's Fig. 1 headline: MoE FFN weights dominate totals.
  for (const auto* name : {"Mixtral-8x7B", "OLMoE-1B-7B",
                           "Qwen1.5-MoE-A2.7B"}) {
    const auto m = model_by_name(name);
    const auto bd = layer_breakdown(m);
    double ffn = 0.0, total = 0.0;
    for (const auto& lb : bd) {
      ffn += lb.ffn_total;
      total += lb.total();
    }
    EXPECT_GT(ffn / total, 0.85) << name;
  }
}

TEST(Params, WeightBytesScaleWithDtype) {
  const auto m = olmoe_1b_7b();
  const double fp16 = weight_bytes(m, DType::kFP16);
  const double fp8 = weight_bytes(m, DType::kFP8E4M3);
  const double int4 = weight_bytes(m, DType::kINT4);
  EXPECT_NEAR(fp8 / fp16, 0.5, 0.01);
  EXPECT_NEAR(int4 / fp16, 0.25, 0.01);
  EXPECT_NEAR(fp16, 2.0 * total_params(m), 0.01 * fp16);
}

TEST(Params, VisionTowerCounted) {
  const auto vlm = deepseek_vl2_tiny();
  auto no_vision = vlm;
  no_vision.modality = Modality::kText;
  no_vision.vision.reset();
  EXPECT_GT(total_params(vlm), total_params(no_vision));
  // SigLIP-400M-class tower.
  EXPECT_NEAR(total_params(vlm) - total_params(no_vision), 0.4e9, 0.1e9);
}

}  // namespace
}  // namespace mib::models
