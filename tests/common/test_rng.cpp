#include "common/rng.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>
#include <set>

namespace mib {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformInvalidRangeThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), Error);
}

TEST(Rng, UniformIndexCoversSupport) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(8));
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST(Rng, UniformIndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalScaled) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, NormalNegativeStddevThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.normal(0.0, -1.0), Error);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> w = {1.0, 3.0};
  int ones = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) ones += rng.categorical(w) == 1;
  EXPECT_NEAR(static_cast<double>(ones) / n, 0.75, 0.01);
}

TEST(Rng, CategoricalRejectsBadWeights) {
  Rng rng(1);
  EXPECT_THROW(rng.categorical({}), Error);
  EXPECT_THROW(rng.categorical({-1.0, 2.0}), Error);
  EXPECT_THROW(rng.categorical({0.0, 0.0}), Error);
}

TEST(Rng, CategoricalZeroWeightNeverDrawn) {
  Rng rng(37);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(41);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Splitmix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

}  // namespace
}  // namespace mib
