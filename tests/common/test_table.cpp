#include "common/table.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace mib {
namespace {

TEST(Table, BuildsRowsAndColumns) {
  Table t("demo");
  t.set_headers({"a", "b"});
  t.new_row().cell("x").cell(1.5, 1);
  t.new_row().cell("y").cell(std::size_t{7});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.row_data()[0][1], "1.5");
  EXPECT_EQ(t.row_data()[1][1], "7");
}

TEST(Table, CellBeforeRowThrows) {
  Table t;
  EXPECT_THROW(t.cell("x"), Error);
}

TEST(Table, PrintContainsContent) {
  Table t("title");
  t.set_headers({"col"});
  t.new_row().cell("value");
  std::ostringstream oss;
  t.print(oss);
  const std::string s = oss.str();
  EXPECT_NE(s.find("title"), std::string::npos);
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("value"), std::string::npos);
}

TEST(Table, PrintAlignsColumns) {
  Table t;
  t.set_headers({"h", "wide_header"});
  t.new_row().cell("longer_cell").cell("x");
  std::ostringstream oss;
  t.print(oss);
  // Every printed line of the box must have the same width.
  std::istringstream iss(oss.str());
  std::string line;
  std::size_t width = 0;
  while (std::getline(iss, line)) {
    if (line.empty()) continue;
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width) << line;
  }
}

TEST(Table, CsvEscaping) {
  Table t;
  t.set_headers({"name", "value"});
  t.new_row().cell("has,comma").cell("has\"quote");
  std::ostringstream oss;
  t.print_csv(oss);
  EXPECT_EQ(oss.str(), "name,value\n\"has,comma\",\"has\"\"quote\"\n");
}

TEST(Table, AddRowWholesale) {
  Table t;
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.columns(), 3u);
}

TEST(FormatFixed, Precision) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(3.0, 0), "3");
  EXPECT_EQ(format_fixed(-0.5, 1), "-0.5");
}

}  // namespace
}  // namespace mib
