#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>

namespace mib {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  RunningStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.37 * i - 3.0;
    (i < 20 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Samples, PercentilesInterpolate) {
  Samples s;
  for (double x : {10.0, 20.0, 30.0, 40.0, 50.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 50.0);
  EXPECT_DOUBLE_EQ(s.median(), 30.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 20.0);
  EXPECT_DOUBLE_EQ(s.percentile(12.5), 15.0);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 3.5);
  EXPECT_DOUBLE_EQ(s.percentile(99), 3.5);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Samples, EmptyIsZero) {
  // Total on the empty set: a report over zero completed requests must
  // render zeros, not throw.
  Samples s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
  EXPECT_DOUBLE_EQ(s.p99(), 0.0);
}

TEST(Samples, ShorthandAccessors) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.p50(), s.percentile(50.0));
  EXPECT_DOUBLE_EQ(s.p95(), s.percentile(95.0));
  EXPECT_DOUBLE_EQ(s.p99(), s.percentile(99.0));
  EXPECT_GT(s.p99(), s.p95());
  EXPECT_GT(s.p95(), s.p50());
}

TEST(Histogram, RejectsNaN) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_THROW(h.add(std::nan("")), Error);
}

TEST(Samples, PercentileRangeChecked) {
  Samples s;
  s.add(1.0);
  EXPECT_THROW(s.percentile(-1), Error);
  EXPECT_THROW(s.percentile(101), Error);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(2), 4.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(2), 6.0);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), Error);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), Error);
}

TEST(CoefficientOfVariation, UniformCountsAreZero) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({5, 5, 5, 5}), 0.0);
}

TEST(CoefficientOfVariation, KnownValue) {
  // counts {2, 4}: mean 3, stddev 1 -> cv = 1/3.
  EXPECT_NEAR(coefficient_of_variation({2, 4}), 1.0 / 3.0, 1e-12);
}

TEST(CoefficientOfVariation, Degenerate) {
  EXPECT_DOUBLE_EQ(coefficient_of_variation({}), 0.0);
  EXPECT_DOUBLE_EQ(coefficient_of_variation({0, 0}), 0.0);
}

TEST(MaxOverMean, Values) {
  EXPECT_DOUBLE_EQ(max_over_mean({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(max_over_mean({0, 4}), 2.0);
  EXPECT_DOUBLE_EQ(max_over_mean({}), 1.0);
  EXPECT_DOUBLE_EQ(max_over_mean({0, 0}), 1.0);
}

}  // namespace
}  // namespace mib
