#include <gtest/gtest.h>

#include "common/dtype.h"
#include "common/error.h"
#include "common/string_util.h"
#include "common/units.h"

namespace mib {
namespace {

TEST(Error, EnsureThrowsWithContext) {
  try {
    MIB_ENSURE(1 == 2, "custom message " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
  }
}

TEST(Error, EnsurePassesSilently) {
  MIB_ENSURE(true, "never evaluated");
  SUCCEED();
}

TEST(Error, OutOfMemoryCarriesSizes) {
  const OutOfMemoryError e("too big", 120.0, 72.0);
  EXPECT_DOUBLE_EQ(e.required_gib(), 120.0);
  EXPECT_DOUBLE_EQ(e.available_gib(), 72.0);
  EXPECT_TRUE(dynamic_cast<const Error*>(&e) != nullptr);
}

TEST(DType, StorageBytes) {
  EXPECT_DOUBLE_EQ(bytes_of(DType::kFP32), 4.0);
  EXPECT_DOUBLE_EQ(bytes_of(DType::kFP16), 2.0);
  EXPECT_DOUBLE_EQ(bytes_of(DType::kBF16), 2.0);
  EXPECT_DOUBLE_EQ(bytes_of(DType::kFP8E4M3), 1.0);
  EXPECT_DOUBLE_EQ(bytes_of(DType::kINT8), 1.0);
  EXPECT_DOUBLE_EQ(bytes_of(DType::kINT4), 0.5);
  EXPECT_EQ(bits_of(DType::kINT4), 4);
}

TEST(DType, NameRoundTrip) {
  for (DType dt : {DType::kFP32, DType::kFP16, DType::kBF16,
                   DType::kFP8E4M3, DType::kFP8E5M2, DType::kINT8,
                   DType::kINT4}) {
    EXPECT_EQ(dtype_from_name(dtype_name(dt)), dt);
  }
  EXPECT_EQ(dtype_from_name("fp8"), DType::kFP8E4M3);
  EXPECT_THROW(dtype_from_name("float64"), ConfigError);
}

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(to_ms(1.5), 1500.0);
  EXPECT_DOUBLE_EQ(to_us(0.001), 1000.0);
  EXPECT_DOUBLE_EQ(to_gib(kGiB), 1.0);
  EXPECT_DOUBLE_EQ(to_gb(kGB), 1.0);
}

TEST(StringUtil, JoinAndSplit) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
}

TEST(StringUtil, CaseAndPrefix) {
  EXPECT_EQ(to_lower("MiXtRaL-8x7B"), "mixtral-8x7b");
  EXPECT_TRUE(starts_with("fig05_topk", "fig05"));
  EXPECT_FALSE(starts_with("fig", "fig05"));
}

TEST(StringUtil, ParamAndByteFormatting) {
  EXPECT_EQ(format_param_count(12.9e9), "12.9B");
  EXPECT_EQ(format_param_count(350e6), "350.0M");
  EXPECT_EQ(format_param_count(1500), "1.5K");
  EXPECT_EQ(format_param_count(12), "12");
  EXPECT_EQ(format_bytes(2.0 * kGiB), "2.00 GiB");
  EXPECT_EQ(format_bytes(512), "512 B");
}

}  // namespace
}  // namespace mib
