#include "common/tensor.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <cmath>

namespace mib {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2u);
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.size(), 6u);
  for (float v : t.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Tensor, FullAndZeros) {
  const Tensor f = Tensor::full({4}, 2.5f);
  for (float v : f.flat()) EXPECT_EQ(v, 2.5f);
  const Tensor z = Tensor::zeros({2, 2});
  EXPECT_EQ(z.size(), 4u);
}

TEST(Tensor, RandnIsSeeded) {
  Rng a(5), b(5);
  const Tensor x = Tensor::randn({8, 8}, a);
  const Tensor y = Tensor::randn({8, 8}, b);
  EXPECT_EQ(max_abs_diff(x, y), 0.0f);
}

TEST(Tensor, InvalidShapesThrow) {
  EXPECT_THROW(Tensor({0, 3}), Error);
  EXPECT_THROW(Tensor({1, 2, 3, 4}), Error);
}

TEST(Tensor, ElementAccess) {
  Tensor t({2, 3});
  t.at(1, 2) = 7.0f;
  EXPECT_EQ(t.at(1, 2), 7.0f);
  EXPECT_EQ(t.at(5), 7.0f);  // row-major flat index
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
  EXPECT_THROW(t.at(6), Error);
}

TEST(Tensor, RowView) {
  Tensor t({2, 4});
  auto r1 = t.row(1);
  r1[3] = 9.0f;
  EXPECT_EQ(t.at(1, 3), 9.0f);
  EXPECT_THROW(t.row(2), Error);
}

TEST(Matmul, HandComputed2x2) {
  Tensor a({2, 2});
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Tensor b({2, 2});
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  Tensor c;
  matmul(a, b, c);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(Matmul, TransposedMatchesPlain) {
  Rng rng(3);
  const Tensor a = Tensor::randn({5, 7}, rng);
  const Tensor b = Tensor::randn({7, 4}, rng);
  // bt[n, k] = b[k, n]
  Tensor bt({4, 7});
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 4; ++j) bt.at(j, i) = b.at(i, j);
  }
  Tensor c1, c2;
  matmul(a, b, c1, false);
  matmul(a, bt, c2, true);
  EXPECT_LT(max_abs_diff(c1, c2), 1e-5f);
}

TEST(Matmul, InnerDimMismatchThrows) {
  Tensor a({2, 3}), b({4, 2});
  Tensor c;
  EXPECT_THROW(matmul(a, b, c), Error);
}

TEST(Matmul, IdentityPreserves) {
  Rng rng(9);
  const Tensor a = Tensor::randn({3, 3}, rng);
  Tensor eye({3, 3});
  for (std::size_t i = 0; i < 3; ++i) eye.at(i, i) = 1.0f;
  Tensor c;
  matmul(a, eye, c);
  EXPECT_LT(max_abs_diff(a, c), 1e-6f);
}

TEST(ElementwiseOps, AddScale) {
  Tensor y = Tensor::full({3}, 1.0f);
  const Tensor x = Tensor::full({3}, 2.0f);
  add_inplace(y, x);
  for (float v : y.flat()) EXPECT_EQ(v, 3.0f);
  scale_inplace(y, 2.0f);
  for (float v : y.flat()) EXPECT_EQ(v, 6.0f);
}

TEST(ElementwiseOps, AddShapeMismatchThrows) {
  Tensor y({2}), x({3});
  EXPECT_THROW(add_inplace(y, x), Error);
}

TEST(Silu, KnownValues) {
  Tensor y({3});
  y.at(0) = 0.0f;
  y.at(1) = 10.0f;
  y.at(2) = -10.0f;
  silu_inplace(y);
  EXPECT_NEAR(y.at(0), 0.0f, 1e-6);
  EXPECT_NEAR(y.at(1), 10.0f, 1e-3);   // silu(x) -> x for large x
  EXPECT_NEAR(y.at(2), 0.0f, 1e-3);    // -> 0 for very negative x
}

TEST(Softmax, RowsNormalized) {
  Rng rng(21);
  Tensor y = Tensor::randn({4, 8}, rng, 3.0f);
  softmax_rows_inplace(y);
  for (std::size_t i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (float v : y.row(i)) {
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(Softmax, StableUnderLargeLogits) {
  Tensor y({1, 3});
  y.at(0, 0) = 1000.0f;
  y.at(0, 1) = 999.0f;
  y.at(0, 2) = -1000.0f;
  softmax_rows_inplace(y);
  EXPECT_TRUE(std::isfinite(y.at(0, 0)));
  EXPECT_GT(y.at(0, 0), y.at(0, 1));
  EXPECT_NEAR(y.at(0, 2), 0.0f, 1e-6);
}

TEST(Norms, FrobeniusAndMaxDiff) {
  Tensor a = Tensor::full({2, 2}, 3.0f);
  EXPECT_NEAR(frobenius_norm(a), 6.0f, 1e-6);
  Tensor b = Tensor::full({2, 2}, 2.5f);
  EXPECT_NEAR(max_abs_diff(a, b), 0.5f, 1e-6);
}

}  // namespace
}  // namespace mib
