#include "common/zipf.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include <vector>

namespace mib {
namespace {

TEST(Zipf, PmfSumsToOne) {
  const ZipfSampler z(16, 1.2);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Zipf, PmfMonotoneDecreasing) {
  const ZipfSampler z(32, 1.0);
  for (std::size_t k = 1; k < z.size(); ++k) {
    EXPECT_LE(z.pmf(k), z.pmf(k - 1) + 1e-15);
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  const ZipfSampler z(10, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) {
    EXPECT_NEAR(z.pmf(k), 0.1, 1e-12);
  }
}

TEST(Zipf, SingleElementAlwaysSampled) {
  const ZipfSampler z(1, 2.0);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(Zipf, SampleFrequenciesMatchPmf) {
  const ZipfSampler z(8, 1.5);
  Rng rng(99);
  std::vector<int> counts(8, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.pmf(k), 0.01)
        << "rank " << k;
  }
}

TEST(Zipf, HigherExponentMoreSkewed) {
  const ZipfSampler mild(16, 0.5);
  const ZipfSampler steep(16, 2.0);
  EXPECT_GT(steep.pmf(0), mild.pmf(0));
  EXPECT_LT(steep.pmf(15), mild.pmf(15));
}

TEST(Zipf, InvalidConstruction) {
  EXPECT_THROW(ZipfSampler(0, 1.0), Error);
  EXPECT_THROW(ZipfSampler(4, -0.1), Error);
}

TEST(Zipf, PmfOutOfRangeThrows) {
  const ZipfSampler z(4, 1.0);
  EXPECT_THROW(z.pmf(4), Error);
}

}  // namespace
}  // namespace mib
