#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/error.h"

namespace mib {
namespace {

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitRunsTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> hits(1000, 0);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i] += 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 1000);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(5, 5, [](std::size_t) { FAIL(); });
  pool.parallel_for(7, 3, [](std::size_t) { FAIL(); });
}

TEST(ThreadPool, ParallelForSingleThreadFallback) {
  ThreadPool pool(1);
  std::vector<int> hits(64, 0);
  pool.parallel_for(0, 64, [&](std::size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 100,
                        [](std::size_t i) {
                          if (i == 42) throw Error("boom");
                        }),
      Error);
  // The pool must stay usable afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 10, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, NullTaskRejected) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.submit(nullptr), Error);
}

TEST(ThreadPool, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPool, ParallelForLargeGrain) {
  ThreadPool pool(8);
  std::atomic<long long> sum{0};
  pool.parallel_for(1, 10001, [&](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(sum.load(), 10000LL * 10001 / 2);
}

}  // namespace
}  // namespace mib
